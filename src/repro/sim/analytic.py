"""One-pass analytic axis solver (Mattson's stack algorithm, Section 6).

Every grid in Tables 5-8 replays the same compiled page streams once per
(cache size, memory limit, associativity) cell, so sweep cost is
O(cells x pages) even with the fast engine.  For stack-friendly
replacement — the default LRU NIC-cache line replacement and the LRU
pinned-page pool — the inclusion property collapses a whole sweep *axis*
into one pass: a single traversal of a node's :class:`CompiledStreams`
yields exact per-pid miss counts for **every** capacity at once, and the
cost model charges each event class a fixed price when ``prefetch == 1``
and ``prepin == 1``, so all ``*_time_us`` fields follow from the counts
(:func:`~repro.core.costs.accumulated_cost`).  Axis cost becomes
O(pages + cells).

Two axis kinds are solved:

* **memory axis** — cells identical except ``memory_limit_bytes``
  (Table 5), direct-mapped.  One pass computes, per pid, the LRU stack
  distance of every page reuse (distance ``d`` means the reuse is a
  check miss exactly for limits ``L <= d``), whether the reuse interval
  suffered a same-set different-key NIC-cache conflict (direct-mapped:
  any such access misses and overwrites, an ``L``-independent fact), and
  the pid-local distinct-page count ``K'`` at the interval's *first*
  conflict — an unpin at limit ``L`` finds a live NIC entry to
  invalidate iff ``min(d, K') >= L``.  Histogram suffix sums then read
  off check misses, NIC misses, unpins, invalidations, evictions, and
  final occupancy for every limit on the axis.
* **cache axis** — cells identical except ``(cache_entries,
  associativity, offsetting)`` with no pinning limit (Table 8).  Per
  distinct ``(num_sets, offsetting)`` geometry one pass computes each
  access's within-set LRU recency depth (bounded at the axis's largest
  associativity): depth ``>= A`` means a miss at associativity ``A``.
  With numpy available the ubiquitous direct-mapped case vectorizes to
  a stable sort by set index plus adjacent comparisons.

The materialized per-cell ``NodeResult`` dicts are **byte-identical** to
the fast engine's — same counters, same bit-exact float time fields
(every charged constant is accumulated in per-pid event order, and the
merged node stats sum the per-pid floats in sorted-pid order, exactly as
``TranslationStats.merged`` does).  The differential tests enforce this
cell by cell.

:func:`plan_axes` is the :class:`~repro.sim.runner.SweepRunner`'s
planner: it groups a batch's pending cells into eligible axes and leaves
everything else (other mechanisms, non-LRU policies, prefetch/prepin
batching, classification, tracing, reference engine) to per-cell replay.
"""

import json
from bisect import bisect_left

from repro import params
from repro.core.costs import accumulated_cost
from repro.core.shared_cache import SharedUtlbCache
from repro.core.stats import TranslationStats
from repro.errors import CapacityError
from repro.sim.mechanisms import lookup as lookup_mechanism

#: Minimum cells before a group is worth one analytic pass; singletons
#: replay (one pass of either engine costs about the same, and replay is
#: the better-tested path).
AXIS_MIN_CELLS = 2

#: The config fields a cache axis varies; everything else must match.
CACHE_AXIS_FIELDS = ("cache_entries", "associativity", "offsetting")

_OFFSET_MULTIPLIER = SharedUtlbCache.OFFSET_MULTIPLIER


class AnalyticAxis:
    """One planned axis: the member cell indices plus a picklable spec.

    ``spec`` is what travels to workers (axis kind, geometry, the
    per-cell axis values aligned with ``indices``, and the cost model's
    five unit prices); ``solve_axis_node`` consumes it next to one
    node's compiled streams.
    """

    __slots__ = ("kind", "indices", "spec")

    def __init__(self, kind, indices, spec):
        self.kind = kind
        self.indices = indices
        self.spec = spec


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def cell_eligible(config, mechanism):
    """Can this cell ride an analytic axis at all (axis fields aside)?

    Asks the mechanism registry: today only ``utlb`` opts in, and only
    on the fast engine's default path — untraced, unclassified, one page
    per pin call and one entry per miss fetch, LRU pinned-page
    replacement.  Everything else — including user-supplied policy
    *instances* — replays per cell.  Unknown mechanism names are simply
    ineligible (dispatch fails loudly later, in the worker).
    """
    mech = lookup_mechanism(mechanism)
    return mech is not None and mech.analytic_eligible(config)


def plan_axes(cells, pending, configs, fingerprint):
    """Group pending cells into analytic axes; returns ``(axes, rest)``.

    Two cells join the same axis when they replay the identical traces
    (by content fingerprint) under configs that differ *only* in the
    axis field(s): ``memory_limit_bytes`` for a memory axis (which also
    needs a direct-mapped cache), or ``(cache_entries, associativity,
    offsetting)`` for a cache axis (which needs no pinning limit).
    Memory axes claim cells first; ``rest`` preserves ``pending``'s
    order for the per-cell replay fallback.
    """
    mem_groups = {}
    cache_groups = {}
    for index in pending:
        cell = cells[index]
        config = configs[index]
        if not cell_eligible(config, cell.mechanism):
            continue
        sig = tuple((node, fingerprint(cell.traces[node]))
                    for node in sorted(cell.traces))
        base = config.to_dict()
        if config.associativity == 1:
            rest = dict(base)
            del rest["memory_limit_bytes"]
            key = (sig, json.dumps(rest, sort_keys=True))
            mem_groups.setdefault(key, []).append(index)
        if config.memory_limit_bytes is None:
            rest = dict(base)
            for field in CACHE_AXIS_FIELDS:
                del rest[field]
            key = (sig, json.dumps(rest, sort_keys=True))
            cache_groups.setdefault(key, []).append(index)

    axes = []
    claimed = set()
    for members in mem_groups.values():
        if len(members) < AXIS_MIN_CELLS:
            continue
        config0 = configs[members[0]]
        axes.append(AnalyticAxis("memory", members, {
            "kind": "memory",
            "num_sets": config0.cache_entries,      # direct-mapped
            "offsetting": bool(config0.offsetting),
            "limits": [configs[m].memory_limit_pages for m in members],
            "unit_costs": config0.cost_model.unit_costs(),
        }))
        claimed.update(members)
    for members in cache_groups.values():
        members = [m for m in members if m not in claimed]
        if len(members) < AXIS_MIN_CELLS:
            continue
        config0 = configs[members[0]]
        axes.append(AnalyticAxis("cache", members, {
            "kind": "cache",
            "geometries": [[configs[m].cache_entries,
                            configs[m].associativity,
                            bool(configs[m].offsetting)]
                           for m in members],
            "unit_costs": config0.cost_model.unit_costs(),
        }))
        claimed.update(members)

    if not claimed:
        return [], pending
    return axes, [i for i in pending if i not in claimed]


# ---------------------------------------------------------------------------
# Solving (runs in workers, one call per (axis, node))
# ---------------------------------------------------------------------------

def solve_axis_node(compiled, spec):
    """Solve one node for every cell of an axis.

    Returns a list of ``NodeResult.to_dict()``-shaped dicts, one per
    axis cell (aligned with the spec's per-cell value lists), each
    byte-identical to what fast replay of that cell would produce.
    """
    if len(compiled.pids) > params.MAX_PROCESSES_PER_NIC:
        raise CapacityError(
            "node trace has %d processes; the NIC tag space holds %d"
            % (len(compiled.pids), params.MAX_PROCESSES_PER_NIC))
    if spec["kind"] == "memory":
        return _solve_memory_axis(compiled, spec)
    return _solve_cache_axis(compiled, spec)


def _key_shift(compiled):
    """Bits to shift a dense pid index past any page number in the trace.

    Pages are bounded by the 20-bit virtual page space in practice, but
    sizing the shift from the stream itself keeps ``(pid << shift) | page``
    collision-free for any trace replay itself would accept.
    """
    widest = max(params.NUM_VPAGES.bit_length(),
                 int(max(compiled.page_stream)).bit_length())
    return widest


def _pid_offsets(compiled, num_sets, offsetting):
    """Per-dense-index set offsets, mirroring NIC registration order.

    ``_build_node`` registers processes in sorted-pid order, so a pid's
    tag is its rank in ``compiled.pids`` (which is sorted), and its
    offset is the golden-ratio spread of that tag (Section 6.3).
    """
    if not offsetting:
        return [0] * len(compiled.pid_order)
    tags = {pid: tag for tag, pid in enumerate(compiled.pids)}
    return [(tags[pid] * _OFFSET_MULTIPLIER) % num_sets
            for pid in compiled.pid_order]


# -- the memory axis --------------------------------------------------------

def _solve_memory_axis(compiled, spec):
    limits = spec["limits"]
    unit = spec["unit_costs"]
    if not compiled.pids:
        empty = _node_dict([], _cache_dict(0, 0, 0, 0))
        return [empty] * len(limits)
    finite = [limit for limit in limits if limit is not None]
    lcap = max(finite) if finite else 1
    data = _memory_pass(compiled, spec["num_sets"], spec["offsetting"], lcap)
    memo = {}
    out = []
    for limit in limits:
        node = memo.get(limit)
        if node is None:
            node = memo[limit] = _materialize_memory(
                compiled, data, limit, unit)
        out.append(node)
    return out


def _memory_pass(compiled, num_sets, offsetting, lcap):
    """One traversal; everything every limit on the axis needs.

    Per pid: access count, first accesses (compulsory check misses), the
    LRU stack-distance histogram of page reuses (``d`` = distinct same-
    pid pages touched since the page's previous access; a reuse at
    distance ``d`` is a check miss iff the limit ``L <= d``), split by
    whether the reuse interval had a NIC-set conflict (a different-key
    access to the page's set — under direct mapping it always misses and
    overwrites, independent of ``L``).  Globally: the invalidation
    histogram over ``min(d, K')`` — ``K'`` being the pid's distinct-page
    count at the interval's first conflict, measured *after* that
    access's own stack update, because a victim page is invalidated in
    the user-check phase, before the conflicting access's fill — and the
    end-of-trace stack distance of each set's final occupant (the set is
    still occupied at limit ``L`` iff that distance is ``< L``).

    The exact per-pid stack is an ascending last-access-time list probed
    with ``bisect`` — delete-and-append keeps it sorted because clocks
    only grow.
    """
    order = compiled.pid_order
    npids = len(order)
    offsets = _pid_offsets(compiled, num_sets, offsetting)
    shift = _key_shift(compiled)
    keybase = [i << shift for i in range(npids)]
    mask = (1 << shift) - 1

    times_list = [[] for _ in range(npids)]
    lasts = [{} for _ in range(npids)]
    clocks = [0] * npids
    n = [0] * npids
    firsts = [0] * npids
    conflicted = [0] * npids
    hist_d = [[0] * (lcap + 1) for _ in range(npids)]
    hist_dnc = [[0] * (lcap + 1) for _ in range(npids)]
    inv_hist = [0] * (lcap + 1)
    set_last = {}               # set index -> key of its last accessor
    open_k = {}                 # key -> K' of its open interval's first conflict
    bl = bisect_left

    for i, v in zip(compiled.index_stream, compiled.page_stream):
        n[i] += 1
        times = times_list[i]
        last = lasts[i]
        t = clocks[i]
        clocks[i] = t + 1
        tprev = last.get(v)
        if tprev is None:
            firsts[i] += 1
            d = -1
        else:
            pos = (len(times) - 1 if times[-1] == tprev
                   else bl(times, tprev))
            d = len(times) - pos - 1
            del times[pos]
        times.append(t)
        last[v] = t
        key = keybase[i] | v
        s = (v + offsets[i]) % num_sets
        occupant = set_last.get(s)
        if (occupant is not None and occupant != key
                and occupant not in open_k):
            # First conflict of the occupant's open interval: snapshot
            # the occupant pid's distinct-page count since the occupant
            # page's last access (its current stack distance) — *after*
            # this access's own stack update, so a same-pid conflictor
            # that itself triggers the victim's unpin is counted.
            oi = occupant >> shift
            otimes = times_list[oi]
            open_k[occupant] = (
                len(otimes) - bl(otimes, lasts[oi][occupant & mask]) - 1)
        set_last[s] = key
        if d >= 0:
            kprime = open_k.pop(key, None)
            dc = d if d < lcap else lcap
            hist_d[i][dc] += 1
            if kprime is None:
                hist_dnc[i][dc] += 1
                inv_hist[dc] += 1
            else:
                conflicted[i] += 1
                m = d if d < kprime else kprime
                inv_hist[m if m < lcap else lcap] += 1

    # Final open intervals: one per distinct page (its last access to
    # end of trace).  An unpin inside it happens iff d_end >= L, and
    # finds a live entry iff min(d_end, K') >= L — same law as closed
    # intervals, no reuse to close them.
    dend = {}
    for i in range(npids):
        times = times_list[i]
        depth = len(times)
        kb = keybase[i]
        for v, tlast in lasts[i].items():
            de = depth - bl(times, tlast) - 1
            key = kb | v
            dend[key] = de
            kprime = open_k.get(key)
            m = de if kprime is None else (de if de < kprime else kprime)
            inv_hist[m if m < lcap else lcap] += 1

    # A set's final occupant is its last accessor (a hit leaves the
    # entry, a miss fills it), and nothing conflicts it afterwards — so
    # the set is empty at the end iff the occupant was unpinned, i.e.
    # iff its end distance reached the limit.
    occ_hist = [0] * (lcap + 1)
    for key in set_last.values():
        de = dend[key]
        occ_hist[de if de < lcap else lcap] += 1

    return {
        "n": n,
        "firsts": firsts,
        "conflicted": conflicted,
        "suffix_d": [_suffix(h) for h in hist_d],
        "suffix_dnc": [_suffix(h) for h in hist_dnc],
        "suffix_inv": _suffix(inv_hist),
        "suffix_occ": _suffix(occ_hist),
        "sets_touched": len(set_last),
    }


def _suffix(hist):
    """``out[k] = sum(hist[k:])`` with a trailing zero sentinel."""
    out = [0] * (len(hist) + 1)
    for k in range(len(hist) - 1, -1, -1):
        out[k] = out[k + 1] + hist[k]
    return out


def _materialize_memory(compiled, data, limit, unit):
    """Read one limit's exact cell results off the pass's histograms."""
    index_of = {pid: i for i, pid in enumerate(compiled.pid_order)}
    rows = []
    misses = 0
    accesses = 0
    for pid in compiled.pids:
        i = index_of[pid]
        n = data["n"][i]
        firsts = data["firsts"][i]
        if limit is None:
            # No limit: nothing is ever unpinned; a reuse only misses
            # the NIC when its interval was conflicted.
            check = firsts
            ni = firsts + data["conflicted"][i]
            unpins = 0
        else:
            check = firsts + data["suffix_d"][i][limit]
            ni = (firsts + data["conflicted"][i]
                  + data["suffix_dnc"][i][limit])
            # Pins minus the pages still pinned at the end (the limit's
            # worth, or the whole footprint if it never filled).
            unpins = check - (limit if limit < firsts else firsts)
        rows.append((pid, _pid_stats_dict(n, check, ni, unpins, unit)))
        misses += ni
        accesses += n
    if limit is None:
        invalidations = 0
        occupied = data["sets_touched"]
    else:
        invalidations = data["suffix_inv"][limit]
        occupied = data["sets_touched"] - data["suffix_occ"][limit]
    evictions = misses - invalidations - occupied
    return _node_dict(rows, _cache_dict(accesses, misses, evictions,
                                        invalidations))


# -- the cache axis ---------------------------------------------------------

def _solve_cache_axis(compiled, spec):
    geometries = [tuple(g) for g in spec["geometries"]]
    unit = spec["unit_costs"]
    if not compiled.pids:
        empty = _node_dict([], _cache_dict(0, 0, 0, 0))
        return [empty] * len(geometries)
    order = compiled.pid_order
    n = [len(compiled.streams[pid]) for pid in order]
    firsts = [len(set(compiled.streams[pid])) for pid in order]

    # One pass per distinct (num_sets, offsetting), shared by every
    # associativity on that geometry (Table 8's 1024/1, 2048/2, 4096/4
    # points all have 1024 sets), bounded at the largest one.
    passes = {}
    for entries, assoc, offsetting in geometries:
        key = (entries // assoc, offsetting)
        passes[key] = max(passes.get(key, 0), assoc)
    pass_data = {key: _cache_pass(compiled, key[0], key[1], amax)
                 for key, amax in passes.items()}

    memo = {}
    out = []
    for geometry in geometries:
        node = memo.get(geometry)
        if node is None:
            node = memo[geometry] = _materialize_cache(
                compiled, geometry, pass_data, n, firsts, unit)
        out.append(node)
    return out


def _cache_pass(compiled, num_sets, offsetting, amax):
    """Per-pid within-set LRU depth histogram plus per-set key counts.

    Returns ``(hist, setkey_hist)``: ``hist[i][j]`` counts pid ``i``'s
    accesses at within-set recency depth ``j`` (depth = distinct other
    keys touched in the set since this key's last access; bucket
    ``amax`` holds first accesses and any depth >= amax), so the miss
    count at associativity ``A <= amax`` is ``sum(hist[i][A:])``.
    ``setkey_hist[j]`` counts sets holding ``min(distinct keys, amax) == j``
    — the A-independent form of final occupancy, since every distinct
    key is filled at least once and sets only lose entries to
    invalidation (never here: no pinning limit, no unpins).
    """
    views = compiled.numpy_views() if amax == 1 else None
    if views is not None:
        return _cache_pass_numpy(compiled, views, num_sets, offsetting)
    return _cache_pass_python(compiled, num_sets, offsetting, amax)


def _cache_pass_numpy(compiled, views, num_sets, offsetting):
    """Vectorized direct-mapped pass: stable sort by set, compare
    neighbours.  Within one set the stable order is time order, so an
    access misses iff it is the set's first or the previous same-set
    access used a different key."""
    import numpy
    idx, pages = views
    if offsetting:
        offsets = numpy.array(
            _pid_offsets(compiled, num_sets, True), dtype=numpy.uint64)
        hashed = pages + offsets[idx]
    else:
        hashed = pages
    sets = hashed % numpy.uint64(num_sets)
    shift = numpy.uint64(_key_shift(compiled))
    keys = (idx.astype(numpy.uint64) << shift) | pages
    sort = numpy.argsort(sets, kind="stable")
    s_sorted = sets[sort]
    k_sorted = keys[sort]
    new_set = numpy.empty(len(sort), dtype=bool)
    new_set[0] = True
    numpy.not_equal(s_sorted[1:], s_sorted[:-1], out=new_set[1:])
    miss_sorted = new_set.copy()
    miss_sorted[1:] |= k_sorted[1:] != k_sorted[:-1]
    misses = numpy.bincount(idx[sort][miss_sorted],
                            minlength=len(compiled.pid_order))
    hist = [[len(compiled.streams[pid]) - int(misses[i]), int(misses[i])]
            for i, pid in enumerate(compiled.pid_order)]
    return hist, [0, int(new_set.sum())]


def _cache_pass_python(compiled, num_sets, offsetting, amax):
    """Pure-Python pass; exact for any associativity.

    Each set keeps its ``amax`` most recently used distinct keys in
    order (the LRU inclusion property makes that list the set contents
    at *every* associativity up to ``amax`` simultaneously); a linear
    probe of a <= 4-element list is the whole per-access cost.
    """
    order = compiled.pid_order
    npids = len(order)
    offsets = _pid_offsets(compiled, num_sets, offsetting)
    shift = _key_shift(compiled)
    keybase = [i << shift for i in range(npids)]
    hist = [[0] * (amax + 1) for _ in range(npids)]
    recency = {}                # set index -> MRU-first key list
    seen = set()                # keys ever accessed (first-fill detection)
    setkeys = {}                # set index -> min(distinct keys, amax)

    if amax == 1:
        for i, v in zip(compiled.index_stream, compiled.page_stream):
            s = (v + offsets[i]) % num_sets
            key = keybase[i] | v
            if recency.get(s) != key:
                recency[s] = key
                hist[i][1] += 1
            else:
                hist[i][0] += 1
        return hist, [0, len(recency)]

    for i, v in zip(compiled.index_stream, compiled.page_stream):
        s = (v + offsets[i]) % num_sets
        key = keybase[i] | v
        stack = recency.get(s)
        if stack is None:
            stack = recency[s] = []
        try:
            pos = stack.index(key)
        except ValueError:
            pos = amax
        if pos < amax:
            hist[i][pos] += 1
            if pos:
                del stack[pos]
                stack.insert(0, key)
        else:
            hist[i][amax] += 1
            stack.insert(0, key)
            if len(stack) > amax:
                stack.pop()
            if key not in seen:
                seen.add(key)
                count = setkeys.get(s, 0)
                if count < amax:
                    setkeys[s] = count + 1
    setkey_hist = [0] * (amax + 1)
    for count in setkeys.values():
        setkey_hist[count] += 1
    return hist, setkey_hist


def _materialize_cache(compiled, geometry, pass_data, n, firsts, unit):
    """Read one (entries, assoc, offsetting) cell off its shared pass."""
    entries, assoc, offsetting = geometry
    hist, setkey_hist = pass_data[(entries // assoc, offsetting)]
    index_of = {pid: i for i, pid in enumerate(compiled.pid_order)}
    rows = []
    misses = 0
    accesses = 0
    for pid in compiled.pids:
        i = index_of[pid]
        ni = sum(hist[i][assoc:])
        rows.append((pid, _pid_stats_dict(n[i], firsts[i], ni, 0, unit)))
        misses += ni
        accesses += n[i]
    occupied = sum((assoc if j > assoc else j) * count
                   for j, count in enumerate(setkey_hist))
    evictions = misses - occupied
    return _node_dict(rows, _cache_dict(accesses, misses, evictions, 0))


# ---------------------------------------------------------------------------
# Byte-identical materialization
# ---------------------------------------------------------------------------

def _pid_stats_dict(n, check_misses, ni_misses, unpins, unit):
    """One pid's ``TranslationStats.to_dict()``, rebuilt from counts.

    Every fast-engine time field accumulates a single constant — check
    0.5, NIC probe 0.8, pin(1), unpin(1), miss(1) — and repeated float
    addition of one constant depends only on the count, so
    :func:`accumulated_cost` lands on the identical bits.
    """
    return {
        "lookups": n,
        "check_misses": check_misses,
        "ni_accesses": n,
        "ni_hits": n - ni_misses,
        "ni_misses": ni_misses,
        "ni_evictions": 0,
        "pin_calls": check_misses,
        "pages_pinned": check_misses,
        "unpin_calls": unpins,
        "pages_unpinned": unpins,
        "interrupts": 0,
        "entries_fetched": ni_misses,
        "check_time_us": accumulated_cost(unit["check"], n),
        "pin_time_us": accumulated_cost(unit["pin"], check_misses),
        "unpin_time_us": accumulated_cost(unit["unpin"], unpins),
        "ni_hit_time_us": accumulated_cost(unit["ni_hit"], n),
        "ni_miss_time_us": accumulated_cost(unit["miss"], ni_misses),
        "interrupt_time_us": 0.0,
    }


def _cache_dict(accesses, misses, evictions, invalidations):
    """A ``CacheStats.snapshot()`` twin (every lookup fills on a miss)."""
    return {
        "accesses": accesses,
        "hits": accesses - misses,
        "misses": misses,
        "evictions": evictions,
        "invalidations": invalidations,
        "fills": misses,
        "miss_rate": misses / accesses if accesses else 0.0,
    }


def _node_dict(pid_rows, cache_dict):
    """A ``NodeResult.to_dict()`` twin from sorted per-pid stat rows.

    The merged floats must sum in sorted-pid order — the order
    ``TranslationStats.merged`` sees, since the simulator builds its
    per-pid dict over sorted pids.
    """
    merged = dict.fromkeys(TranslationStats.FIELDS, 0)
    for field in TranslationStats.TIME_FIELDS:
        merged[field] = 0.0
    for _pid, row in pid_rows:
        for field in TranslationStats.FIELDS:
            merged[field] += row[field]
        for field in TranslationStats.TIME_FIELDS:
            merged[field] += row[field]
    return {
        "stats": merged,
        "per_pid": {str(pid): row for pid, row in pid_rows},
        "cache": cache_dict,
        "breakdown": None,
    }
