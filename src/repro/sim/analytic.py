"""One-pass analytic axis solver (Mattson's stack algorithm, Section 6).

Every grid in Tables 5-8 replays the same compiled page streams once per
(cache size, memory limit, associativity) cell, so sweep cost is
O(cells x pages) even with the fast engine.  For stack-friendly
replacement — the default LRU NIC-cache line replacement and the LRU
pinned-page pool — the inclusion property collapses a whole sweep *axis*
into one pass: a single traversal of a node's :class:`CompiledStreams`
yields exact per-pid miss counts for **every** capacity at once, and the
cost model charges each event class a fixed price when ``prefetch == 1``
and ``prepin == 1``, so all ``*_time_us`` fields follow from the counts
(:func:`~repro.core.costs.accumulated_cost`).  Axis cost becomes
O(pages + cells).

Two axis kinds are solved:

* **memory axis** — cells identical except ``memory_limit_bytes``
  (Table 5), direct-mapped.  One pass computes, per pid, the LRU stack
  distance of every page reuse (distance ``d`` means the reuse is a
  check miss exactly for limits ``L <= d``), whether the reuse interval
  suffered a same-set different-key NIC-cache conflict (direct-mapped:
  any such access misses and overwrites, an ``L``-independent fact), and
  the pid-local distinct-page count ``K'`` at the interval's *first*
  conflict — an unpin at limit ``L`` finds a live NIC entry to
  invalidate iff ``min(d, K') >= L``.  Histogram suffix sums then read
  off check misses, NIC misses, unpins, invalidations, evictions, and
  final occupancy for every limit on the axis.
* **cache axis** — cells identical except ``(cache_entries,
  associativity, offsetting)`` with no pinning limit (Table 8).  Per
  distinct ``(num_sets, offsetting)`` geometry one pass computes each
  access's within-set LRU recency depth (bounded at the axis's largest
  associativity): depth ``>= A`` means a miss at associativity ``A``.
  With numpy available the ubiquitous direct-mapped case vectorizes to
  a stable sort by set index plus adjacent comparisons.

The materialized per-cell ``NodeResult`` dicts are **byte-identical** to
the fast engine's — same counters, same bit-exact float time fields
(every charged constant is accumulated in per-pid event order, and the
merged node stats sum the per-pid floats in sorted-pid order, exactly as
``TranslationStats.merged`` does).  The differential tests enforce this
cell by cell.

:func:`plan_axes` is the :class:`~repro.sim.runner.SweepRunner`'s
planner: it groups a batch's pending cells into eligible axes and leaves
everything else (other mechanisms, non-LRU policies, prefetch/prepin
batching, classification, tracing, reference engine) to per-cell replay.
"""

import json
from bisect import bisect_left

from repro import params
from repro.errors import CapacityError
from repro.sim.kernels import (
    cache_pass as _cache_pass,
    cache_dict as _cache_dict,
    key_shift as _key_shift,
    materialize_cache as _materialize_cache,
    node_dict as _node_dict,
    pid_offsets as _pid_offsets,
    pid_stats_dict as _pid_stats_dict,
    stream_firsts,
)
from repro.sim.mechanisms import lookup as lookup_mechanism

#: Minimum cells before a group is worth one analytic pass; singletons
#: replay (one pass of either engine costs about the same, and replay is
#: the better-tested path).
AXIS_MIN_CELLS = 2

#: The config fields a cache axis varies; everything else must match.
CACHE_AXIS_FIELDS = ("cache_entries", "associativity", "offsetting")


class AnalyticAxis:
    """One planned axis: the member cell indices plus a picklable spec.

    ``spec`` is what travels to workers (axis kind, geometry, the
    per-cell axis values aligned with ``indices``, and the cost model's
    five unit prices); ``solve_axis_node`` consumes it next to one
    node's compiled streams.
    """

    __slots__ = ("kind", "indices", "spec")

    def __init__(self, kind, indices, spec):
        self.kind = kind
        self.indices = indices
        self.spec = spec


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def cell_eligible(config, mechanism):
    """Can this cell ride an analytic axis at all (axis fields aside)?

    Asks the mechanism registry: today only ``utlb`` opts in, and only
    on the fast engine's default path — untraced, unclassified, one page
    per pin call and one entry per miss fetch, LRU pinned-page
    replacement.  Everything else — including user-supplied policy
    *instances* — replays per cell.  Unknown mechanism names are simply
    ineligible (dispatch fails loudly later, in the worker).
    """
    mech = lookup_mechanism(mechanism)
    return mech is not None and mech.analytic_eligible(config)


def plan_axes(cells, pending, configs, fingerprint):
    """Group pending cells into analytic axes; returns ``(axes, rest)``.

    Two cells join the same axis when they replay the identical traces
    (by content fingerprint) under configs that differ *only* in the
    axis field(s): ``memory_limit_bytes`` for a memory axis (which also
    needs a direct-mapped cache), or ``(cache_entries, associativity,
    offsetting)`` for a cache axis (which needs no pinning limit).
    Memory axes claim cells first; ``rest`` preserves ``pending``'s
    order for the per-cell replay fallback.
    """
    mem_groups = {}
    cache_groups = {}
    for index in pending:
        cell = cells[index]
        config = configs[index]
        if not cell_eligible(config, cell.mechanism):
            continue
        sig = tuple((node, fingerprint(cell.traces[node]))
                    for node in sorted(cell.traces))
        base = config.to_dict()
        if config.associativity == 1:
            rest = dict(base)
            del rest["memory_limit_bytes"]
            key = (sig, json.dumps(rest, sort_keys=True))
            mem_groups.setdefault(key, []).append(index)
        if config.memory_limit_bytes is None:
            rest = dict(base)
            for field in CACHE_AXIS_FIELDS:
                del rest[field]
            key = (sig, json.dumps(rest, sort_keys=True))
            cache_groups.setdefault(key, []).append(index)

    axes = []
    claimed = set()
    for members in mem_groups.values():
        if len(members) < AXIS_MIN_CELLS:
            continue
        config0 = configs[members[0]]
        axes.append(AnalyticAxis("memory", members, {
            "kind": "memory",
            "num_sets": config0.cache_entries,      # direct-mapped
            "offsetting": bool(config0.offsetting),
            "limits": [configs[m].memory_limit_pages for m in members],
            "unit_costs": config0.cost_model.unit_costs(),
        }))
        claimed.update(members)
    for members in cache_groups.values():
        members = [m for m in members if m not in claimed]
        if len(members) < AXIS_MIN_CELLS:
            continue
        config0 = configs[members[0]]
        axes.append(AnalyticAxis("cache", members, {
            "kind": "cache",
            "geometries": [[configs[m].cache_entries,
                            configs[m].associativity,
                            bool(configs[m].offsetting)]
                           for m in members],
            "unit_costs": config0.cost_model.unit_costs(),
        }))
        claimed.update(members)

    if not claimed:
        return [], pending
    return axes, [i for i in pending if i not in claimed]


# ---------------------------------------------------------------------------
# Solving (runs in workers, one call per (axis, node))
# ---------------------------------------------------------------------------

def solve_axis_node(compiled, spec):
    """Solve one node for every cell of an axis.

    Returns a list of ``NodeResult.to_dict()``-shaped dicts, one per
    axis cell (aligned with the spec's per-cell value lists), each
    byte-identical to what fast replay of that cell would produce.
    """
    if len(compiled.pids) > params.MAX_PROCESSES_PER_NIC:
        raise CapacityError(
            "node trace has %d processes; the NIC tag space holds %d"
            % (len(compiled.pids), params.MAX_PROCESSES_PER_NIC))
    if spec["kind"] == "memory":
        return _solve_memory_axis(compiled, spec)
    return _solve_cache_axis(compiled, spec)


# -- the memory axis --------------------------------------------------------

def _solve_memory_axis(compiled, spec):
    limits = spec["limits"]
    unit = spec["unit_costs"]
    if not compiled.pids:
        empty = _node_dict([], _cache_dict(0, 0, 0, 0))
        return [empty] * len(limits)
    finite = [limit for limit in limits if limit is not None]
    lcap = max(finite) if finite else 1
    data = _memory_pass(compiled, spec["num_sets"], spec["offsetting"], lcap)
    memo = {}
    out = []
    for limit in limits:
        node = memo.get(limit)
        if node is None:
            node = memo[limit] = _materialize_memory(
                compiled, data, limit, unit)
        out.append(node)
    return out


def _memory_pass(compiled, num_sets, offsetting, lcap):
    """One traversal; everything every limit on the axis needs.

    Per pid: access count, first accesses (compulsory check misses), the
    LRU stack-distance histogram of page reuses (``d`` = distinct same-
    pid pages touched since the page's previous access; a reuse at
    distance ``d`` is a check miss iff the limit ``L <= d``), split by
    whether the reuse interval had a NIC-set conflict (a different-key
    access to the page's set — under direct mapping it always misses and
    overwrites, independent of ``L``).  Globally: the invalidation
    histogram over ``min(d, K')`` — ``K'`` being the pid's distinct-page
    count at the interval's first conflict, measured *after* that
    access's own stack update, because a victim page is invalidated in
    the user-check phase, before the conflicting access's fill — and the
    end-of-trace stack distance of each set's final occupant (the set is
    still occupied at limit ``L`` iff that distance is ``< L``).

    The exact per-pid stack is an ascending last-access-time list probed
    with ``bisect`` — delete-and-append keeps it sorted because clocks
    only grow.
    """
    order = compiled.pid_order
    npids = len(order)
    offsets = _pid_offsets(compiled, num_sets, offsetting)
    shift = _key_shift(compiled)
    keybase = [i << shift for i in range(npids)]
    mask = (1 << shift) - 1

    times_list = [[] for _ in range(npids)]
    lasts = [{} for _ in range(npids)]
    clocks = [0] * npids
    n = [0] * npids
    firsts = [0] * npids
    conflicted = [0] * npids
    hist_d = [[0] * (lcap + 1) for _ in range(npids)]
    hist_dnc = [[0] * (lcap + 1) for _ in range(npids)]
    inv_hist = [0] * (lcap + 1)
    set_last = {}               # set index -> key of its last accessor
    open_k = {}                 # key -> K' of its open interval's first conflict
    bl = bisect_left

    for i, v in zip(compiled.index_stream, compiled.page_stream):
        n[i] += 1
        times = times_list[i]
        last = lasts[i]
        t = clocks[i]
        clocks[i] = t + 1
        tprev = last.get(v)
        if tprev is None:
            firsts[i] += 1
            d = -1
        else:
            pos = (len(times) - 1 if times[-1] == tprev
                   else bl(times, tprev))
            d = len(times) - pos - 1
            del times[pos]
        times.append(t)
        last[v] = t
        key = keybase[i] | v
        s = (v + offsets[i]) % num_sets
        occupant = set_last.get(s)
        if (occupant is not None and occupant != key
                and occupant not in open_k):
            # First conflict of the occupant's open interval: snapshot
            # the occupant pid's distinct-page count since the occupant
            # page's last access (its current stack distance) — *after*
            # this access's own stack update, so a same-pid conflictor
            # that itself triggers the victim's unpin is counted.
            oi = occupant >> shift
            otimes = times_list[oi]
            open_k[occupant] = (
                len(otimes) - bl(otimes, lasts[oi][occupant & mask]) - 1)
        set_last[s] = key
        if d >= 0:
            kprime = open_k.pop(key, None)
            dc = d if d < lcap else lcap
            hist_d[i][dc] += 1
            if kprime is None:
                hist_dnc[i][dc] += 1
                inv_hist[dc] += 1
            else:
                conflicted[i] += 1
                m = d if d < kprime else kprime
                inv_hist[m if m < lcap else lcap] += 1

    # Final open intervals: one per distinct page (its last access to
    # end of trace).  An unpin inside it happens iff d_end >= L, and
    # finds a live entry iff min(d_end, K') >= L — same law as closed
    # intervals, no reuse to close them.
    dend = {}
    for i in range(npids):
        times = times_list[i]
        depth = len(times)
        kb = keybase[i]
        for v, tlast in lasts[i].items():
            de = depth - bl(times, tlast) - 1
            key = kb | v
            dend[key] = de
            kprime = open_k.get(key)
            m = de if kprime is None else (de if de < kprime else kprime)
            inv_hist[m if m < lcap else lcap] += 1

    # A set's final occupant is its last accessor (a hit leaves the
    # entry, a miss fills it), and nothing conflicts it afterwards — so
    # the set is empty at the end iff the occupant was unpinned, i.e.
    # iff its end distance reached the limit.
    occ_hist = [0] * (lcap + 1)
    for key in set_last.values():
        de = dend[key]
        occ_hist[de if de < lcap else lcap] += 1

    return {
        "n": n,
        "firsts": firsts,
        "conflicted": conflicted,
        "suffix_d": [_suffix(h) for h in hist_d],
        "suffix_dnc": [_suffix(h) for h in hist_dnc],
        "suffix_inv": _suffix(inv_hist),
        "suffix_occ": _suffix(occ_hist),
        "sets_touched": len(set_last),
    }


def _suffix(hist):
    """``out[k] = sum(hist[k:])`` with a trailing zero sentinel."""
    out = [0] * (len(hist) + 1)
    for k in range(len(hist) - 1, -1, -1):
        out[k] = out[k + 1] + hist[k]
    return out


def _materialize_memory(compiled, data, limit, unit):
    """Read one limit's exact cell results off the pass's histograms."""
    index_of = {pid: i for i, pid in enumerate(compiled.pid_order)}
    rows = []
    misses = 0
    accesses = 0
    for pid in compiled.pids:
        i = index_of[pid]
        n = data["n"][i]
        firsts = data["firsts"][i]
        if limit is None:
            # No limit: nothing is ever unpinned; a reuse only misses
            # the NIC when its interval was conflicted.
            check = firsts
            ni = firsts + data["conflicted"][i]
            unpins = 0
        else:
            check = firsts + data["suffix_d"][i][limit]
            ni = (firsts + data["conflicted"][i]
                  + data["suffix_dnc"][i][limit])
            # Pins minus the pages still pinned at the end (the limit's
            # worth, or the whole footprint if it never filled).
            unpins = check - (limit if limit < firsts else firsts)
        rows.append((pid, _pid_stats_dict(n, check, ni, unpins, unit)))
        misses += ni
        accesses += n
    if limit is None:
        invalidations = 0
        occupied = data["sets_touched"]
    else:
        invalidations = data["suffix_inv"][limit]
        occupied = data["sets_touched"] - data["suffix_occ"][limit]
    evictions = misses - invalidations - occupied
    return _node_dict(rows, _cache_dict(accesses, misses, evictions,
                                        invalidations))


# -- the cache axis ---------------------------------------------------------

def _solve_cache_axis(compiled, spec):
    geometries = [tuple(g) for g in spec["geometries"]]
    unit = spec["unit_costs"]
    if not compiled.pids:
        empty = _node_dict([], _cache_dict(0, 0, 0, 0))
        return [empty] * len(geometries)
    order = compiled.pid_order
    n = [len(compiled.streams[pid]) for pid in order]
    firsts = stream_firsts(compiled)

    # One pass per distinct (num_sets, offsetting), shared by every
    # associativity on that geometry (Table 8's 1024/1, 2048/2, 4096/4
    # points all have 1024 sets), bounded at the largest one.
    passes = {}
    for entries, assoc, offsetting in geometries:
        key = (entries // assoc, offsetting)
        passes[key] = max(passes.get(key, 0), assoc)
    pass_data = {key: _cache_pass(compiled, key[0], key[1], amax)
                 for key, amax in passes.items()}

    memo = {}
    out = []
    for geometry in geometries:
        node = memo.get(geometry)
        if node is None:
            node = memo[geometry] = _materialize_cache(
                compiled, geometry, pass_data, n, firsts, unit)
        out.append(node)
    return out
