"""Ablation experiments beyond the paper's evaluation.

The paper's Section 7 lists what it could not study: other replacement
policies, the per-process UTLB vs the Shared UTLB-Cache, and independent
multiprogrammed workloads.  These functions close each gap, plus the
full design-space quadrant.  The benchmark harness calls them; they are
also directly usable as library API.
"""

from repro import params
from repro.core.interrupt_per_process import simulate_node_intr_pp
from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.pp_simulator import simulate_node_pp
from repro.sim.report import format_table
from repro.sim.simulator import simulate_node
from repro.sim.sweep import generate_traces, sweep_policies
from repro.traces.synth import TABLE_ORDER, MixedWorkload, make_app

QUADRANT = (
    ("UTLB (user+shared)", "utlb"),
    ("per-proc (user)", "pp"),
    ("intr+shared (UNet-MM)", "intr"),
    ("intr+per-proc (VMMC'97)", "intr-pp"),
)


def _simulate(trace, config, mechanism, sram_entries):
    if mechanism == "utlb":
        return simulate_node(trace, config)
    if mechanism == "intr":
        return simulate_node_intr(trace, config)
    if mechanism == "pp":
        return simulate_node_pp(trace, config, sram_entries=sram_entries)
    if mechanism == "intr-pp":
        return simulate_node_intr_pp(trace, config,
                                     sram_entries=sram_entries)
    raise ValueError("unknown mechanism %r" % (mechanism,))


# ---------------------------------------------------------------------------
# The design-space quadrant
# ---------------------------------------------------------------------------

def design_quadrant(app_names=("barnes", "fft", "radix"), sram_entries=256,
                    scale=0.1, seed=1):
    """All four mechanisms on the same traces under one SRAM budget.

    Returns {app: {mechanism label: TranslationStats}}.
    """
    config = SimConfig(cache_entries=sram_entries)
    data = {}
    for name in app_names:
        trace = make_app(name).generate_node(0, seed=seed, scale=scale)
        data[name] = {
            label: _simulate(trace, config, mech, sram_entries).stats
            for label, mech in QUADRANT
        }
    return data


def render_design_quadrant(data, sram_entries=256):
    rows = []
    for app, cells in data.items():
        for label, stats in cells.items():
            rows.append([app, label,
                         round(stats.avg_lookup_cost_us, 2),
                         stats.interrupts,
                         stats.pages_pinned + stats.pages_unpinned])
    return format_table(
        ["app", "mechanism", "us/lookup", "interrupts", "pin+unpin ops"],
        rows,
        title="Ablation: the translation design-space quadrant "
              "(%d-entry NIC SRAM budget)" % sram_entries)


# ---------------------------------------------------------------------------
# Replacement policies
# ---------------------------------------------------------------------------

POLICIES = ("lru", "mru", "lfu", "mfu", "random")


def policy_grid(scale=0.1, nodes=1, seed=1, cache_entries=4096,
                limit_pages=None):
    """Unpin rate per app per pin policy under a binding memory limit.

    Returns {app: {policy: unpin rate}}.
    """
    grid = {}
    for name in TABLE_ORDER:
        app = make_app(name)
        traces = generate_traces(app, nodes=nodes, seed=seed, scale=scale)
        limit = (limit_pages if limit_pages is not None
                 else max(16, int(1024 * scale)))
        config = SimConfig(cache_entries=cache_entries,
                           memory_limit_bytes=limit * params.PAGE_SIZE)
        results = sweep_policies(traces, config, policies=POLICIES)
        grid[name] = {policy: result.stats.unpin_rate
                      for policy, result in results.items()}
    return grid


def render_policy_grid(grid):
    rows = [[name] + [round(grid[name][p], 3) for p in POLICIES]
            for name in grid]
    return format_table(
        ["Application"] + list(POLICIES), rows,
        title="Ablation: unpins/lookup by pin policy (binding limit)",
        precision=3)


# ---------------------------------------------------------------------------
# Heterogeneous multiprogramming
# ---------------------------------------------------------------------------

def mixed_workload_grid(mixes=(("barnes", "fft"), ("radix", "volrend")),
                        sizes=(1024, 4096), scale=0.1, seed=1):
    """Miss rates for two-program mixes across cache organisations.

    Returns {mix name: {(size, org): miss rate}} with organisations
    'direct', '4-way', 'direct-nohash'.
    """
    data = {}
    for names in mixes:
        mix = MixedWorkload(list(names), scale=scale)
        trace = mix.generate_node(0, seed=seed)
        cells = {}
        for size in sizes:
            cells[(size, "direct")] = simulate_node(
                trace, SimConfig(cache_entries=size)).stats.ni_miss_rate
            cells[(size, "4-way")] = simulate_node(
                trace, SimConfig(cache_entries=size,
                                 associativity=4)).stats.ni_miss_rate
            cells[(size, "direct-nohash")] = simulate_node(
                trace, SimConfig(cache_entries=size,
                                 offsetting=False)).stats.ni_miss_rate
        data[mix.name] = cells
    return data


# ---------------------------------------------------------------------------
# Seed sensitivity: are the reproduced rates robust to trace randomness?
# ---------------------------------------------------------------------------

def seed_sensitivity(app_names=TABLE_ORDER, seeds=(1, 2, 3),
                     cache_entries=1024, scale=0.1, nodes=1):
    """NI miss rate spread across trace-generation seeds.

    Returns {app: {"rates": [per-seed rates], "spread": max-min}}.
    The synthetic generators are stochastic; the reproduced rates must
    not depend materially on the seed, or the comparison against the
    paper would be cherry-picked.
    """
    config = SimConfig(cache_entries=cache_entries)
    data = {}
    for name in app_names:
        rates = []
        for seed in seeds:
            app = make_app(name)
            traces = generate_traces(app, nodes=nodes, seed=seed,
                                     scale=scale)
            total = None
            for records in traces.values():
                result = simulate_node(records, config)
                total = (result.stats if total is None
                         else total.merge(result.stats))
            rates.append(total.ni_miss_rate)
        data[name] = {"rates": rates, "spread": max(rates) - min(rates)}
    return data


def render_seed_sensitivity(data, seeds=(1, 2, 3)):
    rows = [[name]
            + [round(rate, 3) for rate in cell["rates"]]
            + [round(cell["spread"], 3)]
            for name, cell in data.items()]
    return format_table(
        ["app"] + ["seed %d" % s for s in seeds] + ["spread"],
        rows,
        title="Seed sensitivity of NI miss rates (robustness check)",
        precision=3)


# ---------------------------------------------------------------------------
# Per-process table fragmentation (the Section 3.3 motivation)
# ---------------------------------------------------------------------------

def buffer_scatter(utlb):
    """Fraction of adjacent pinned page pairs whose table slots are not
    adjacent — 0.0 when every buffer's translations sit contiguously,
    approaching 1.0 when they are scattered all over the table.
    """
    entries = dict(utlb.tree.items())      # vpage -> slot
    pairs = 0
    scattered = 0
    for vpage, slot in entries.items():
        next_slot = entries.get(vpage + 1)
        if next_slot is None:
            continue
        pairs += 1
        if abs(next_slot - slot) != 1:
            scattered += 1
    return scattered / pairs if pairs else 0.0


def fragmentation_over_time(num_slots=256, working_set=512,
                            accesses=4000, pin_policy="lru", seed=1,
                            samples=8, buffer_pages=8):
    """How a per-process UTLB table fragments under churn.

    "After complex data accesses, a user buffer's translations may be
    scattered in the translation table" (Section 3.3) — the problem
    Hierarchical-UTLB eliminates by indexing on virtual addresses.
    Buffers of ``buffer_pages`` contiguous pages are accessed in random
    order over a working set larger than the table; as evictions recycle
    arbitrary slots, each freshly pinned buffer lands in whatever slots
    are free.  Returns [(accesses so far, scatter)] pairs, where scatter
    is :func:`buffer_scatter`.
    """
    import random as random_module

    from repro.core.per_process import PerProcessUtlb

    utlb = PerProcessUtlb(1, num_slots=num_slots, pin_policy=pin_policy,
                          prepin=buffer_pages, seed=seed)
    rng = random_module.Random(seed)
    points = []
    interval = max(1, accesses // samples)
    buffers = working_set // buffer_pages
    for index in range(accesses):
        base = rng.randrange(buffers) * buffer_pages
        utlb.access_page(base + rng.randrange(buffer_pages))
        if (index + 1) % interval == 0:
            points.append((index + 1, buffer_scatter(utlb)))
    return points


def render_fragmentation(points, **info):
    rows = [[count, round(frag, 3)] for count, frag in points]
    extra = " ".join("%s=%s" % kv for kv in sorted(info.items()))
    return format_table(
        ["accesses", "buffer scatter"], rows,
        title="Ablation: per-process UTLB buffer scatter over time "
              + ("(%s)" % extra if extra else ""),
        precision=3)


def render_mixed_grid(data):
    rows = []
    for mix_name, cells in data.items():
        sizes = sorted({size for size, _ in cells})
        for size in sizes:
            rows.append([mix_name, size,
                         round(cells[(size, "direct")], 3),
                         round(cells[(size, "4-way")], 3),
                         round(cells[(size, "direct-nohash")], 3)])
    return format_table(
        ["mix", "cache", "direct+offset", "4-way+offset", "direct-nohash"],
        rows,
        title="Ablation: heterogeneous two-program mixes sharing one NIC",
        precision=3)
