"""Rendering of experiment results: aligned tables and ASCII figures.

Every paper table is rendered as an aligned text table; the two figures
(miss breakdown, prefetch curves) render as stacked text bars and ASCII
line charts.  Rendering never computes — it formats data the experiment
functions return, so tests can assert on the data and humans can read the
output.
"""


def format_table(headers, rows, title=None, precision=2):
    """Align ``rows`` (lists of cells) under ``headers``; floats are
    formatted to ``precision`` decimals."""
    def fmt(cell):
        if isinstance(cell, float):
            return "%.*f" % (precision, cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def stacked_bar(components, total_width=40, scale_max=None):
    """One horizontal stacked bar: ``components`` is a list of
    (label_char, value); returns the bar string.

    Values are fractions (e.g. per-class miss rates); ``scale_max`` sets
    what a full-width bar represents (default: the components' sum).
    """
    total = sum(value for _, value in components)
    scale = scale_max if scale_max else (total or 1.0)
    bar = []
    for char, value in components:
        cells = int(round(value / scale * total_width))
        bar.append(char * cells)
    return "".join(bar)


def render_breakdown_chart(entries, total_width=40):
    """Figure-7-style chart: ``entries`` is a list of
    (label, {class: rate}) with classes compulsory/capacity/conflict.

    Renders one stacked bar per entry plus a legend.
    """
    scale_max = max(
        (sum(rates.values()) for _, rates in entries), default=1.0) or 1.0
    out = ["legend: #=compulsory  +=capacity  .=conflict   "
           "(bar width = %.1f%% miss rate)" % (scale_max * 100)]
    label_width = max((len(label) for label, _ in entries), default=0)
    for label, rates in entries:
        bar = stacked_bar(
            [("#", rates.get("compulsory", 0.0)),
             ("+", rates.get("capacity", 0.0)),
             (".", rates.get("conflict", 0.0))],
            total_width=total_width, scale_max=scale_max)
        total = sum(rates.values())
        out.append("%s |%s %5.1f%%"
                   % (label.ljust(label_width), bar.ljust(total_width),
                      total * 100))
    return "\n".join(out)


def render_line_chart(series, width=60, height=16, x_label="", y_label=""):
    """ASCII line chart: ``series`` is {label: [(x, y), ...]}.

    Each series gets a marker character; points are plotted on a shared
    grid with min/max auto-scaled.
    """
    markers = "ox*+#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(sorted(series.items(),
                                                key=lambda kv: str(kv[0]))):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    out = []
    if y_label:
        out.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            edge = "%8.3g +" % y_max
        elif row_index == height - 1:
            edge = "%8.3g +" % y_min
        else:
            edge = "         |"
        out.append(edge + "".join(row))
    out.append("          " + "-" * width)
    out.append("          %-8.3g%s%8.3g" % (
        x_min, x_label.center(width - 16), x_max))
    legend = "   ".join(
        "%s=%s" % (markers[i % len(markers)], label)
        for i, label in enumerate(sorted(series, key=str)))
    out.append("legend: " + legend)
    return "\n".join(out)
