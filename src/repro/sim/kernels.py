"""Vectorized batch kernels: the ``engine="kernel"`` replay tier.

The fast engine still walks one lookup at a time — a Python loop of
dict probes over the compiled interleaved arrays.  For the shadow-
eligible case (``utlb``, untraced, default :class:`SharedUtlbCache`,
no pinning limit) the whole replay is a pure function of the page
stream, so it vectorizes: compute every lookup's set index with batch
index math, then derive hits and misses per ``(pid, set)`` via
*previous-occurrence analysis* — a stable argsort over ``set_index``
keeps time order within each set, so an access misses iff it is the
set's first or the previous same-set access held a different key
(direct-mapped, exactly); set-associative cells compare within-set
recency depth against the associativity using the same stack machinery
the analytic solver uses.  The counters then feed the identical
counter→:class:`~repro.core.costs.CostModel` tail as the fast engine,
so the materialized :class:`~repro.sim.simulator.NodeResult` dict is
**byte-identical** — same integers, same bit-exact ``*_time_us`` floats
(:func:`~repro.core.costs.accumulated_cost`).

This module is also the home of the machinery the analytic axis solver
shares with the kernel tier (it grew up in ``sim/analytic.py``): the
collision-free ``(pid, page)`` key packing, the per-process set offsets
mirroring NIC registration order, the cache passes themselves, and the
byte-identical materialization helpers.  ``sim/analytic.py`` imports
them from here; nothing here imports the mechanism registry or the
simulators, so the kernel tier sits below both.

Eligibility is wired as the ``kernel_eligible`` predicate on the
:class:`~repro.sim.mechanisms.Mechanism` descriptor: only ``utlb`` opts
in, and only on the fast engine's default path (unclassified, one page
per pin call and one entry per miss fetch, LRU pin policy by name, no
pinning limit) with numpy importable.  Everything else — tracers,
custom cache factories, prefetch/prepin batching, memory limits —
falls back to the fast or reference engines unchanged; ``kernel`` is
``fast`` plus an optimization, never a model change.
"""

from repro import params
from repro.core.costs import accumulated_cost
from repro.core.shared_cache import SharedUtlbCache
from repro.core.stats import TranslationStats
from repro.errors import CapacityError

OFFSET_MULTIPLIER = SharedUtlbCache.OFFSET_MULTIPLIER

_NUMPY = None
_NUMPY_CHECKED = False


def _numpy():
    """The numpy module, or None (an optional accelerator, never a
    dependency — every kernel keeps a pure-Python fallback)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _NUMPY = numpy
    return _NUMPY


def kernel_available():
    """True when the vectorized kernels can run (numpy importable)."""
    return _numpy() is not None


def utlb_kernel_eligible(config):
    """May the batch kernel answer this ``utlb`` cell?

    Exactly the fast engine's default no-limit path: unclassified, one
    page per pin call and one entry per miss fetch, LRU pinned-page
    replacement by *name* (policy instances may diverge from the
    modeled LRU), and no pinning limit (a limit makes unpin order part
    of the result; those cells replay).  Engine and tracer gating live
    on the :class:`~repro.sim.mechanisms.Mechanism` descriptor.
    """
    return (
        config.memory_limit_bytes is None
        and not config.classify
        and config.prefetch == 1
        and config.prepin == 1
        and config.pin_policy == "lru"
        and kernel_available()
    )


# ---------------------------------------------------------------------------
# Shared index math (the analytic solver imports these)
# ---------------------------------------------------------------------------


def key_shift(compiled):
    """Bits to shift a dense pid index past any page number in the trace.

    Pages are bounded by the 20-bit virtual page space in practice, but
    sizing the shift from the stream itself keeps ``(pid << shift) | page``
    collision-free for any trace replay itself would accept.
    """
    widest = max(
        params.NUM_VPAGES.bit_length(), int(max(compiled.page_stream)).bit_length()
    )
    return widest


def pid_offsets(compiled, num_sets, offsetting):
    """Per-dense-index set offsets, mirroring NIC registration order.

    ``_build_node`` registers processes in sorted-pid order, so a pid's
    tag is its rank in ``compiled.pids`` (which is sorted), and its
    offset is the golden-ratio spread of that tag (Section 6.3).
    """
    if not offsetting:
        return [0] * len(compiled.pid_order)
    tags = {pid: tag for tag, pid in enumerate(compiled.pids)}
    return [(tags[pid] * OFFSET_MULTIPLIER) % num_sets for pid in compiled.pid_order]


def stream_firsts(compiled):
    """Distinct pages per dense pid index (compulsory check misses).

    The vectorized form sorts the packed ``(pid, page)`` keys once and
    counts boundaries per pid; the fallback is the obvious per-stream
    ``len(set(...))``.  Both return plain ints, identical either way.
    """
    numpy = _numpy()
    views = (
        compiled.numpy_views() if numpy is not None and compiled.total_pages else None
    )
    if views is None:
        return [len(set(compiled.streams[pid])) for pid in compiled.pid_order]
    idx, pages = views
    shift = numpy.uint64(key_shift(compiled))
    keys = numpy.sort((idx.astype(numpy.uint64) << shift) | pages)
    new = numpy.empty(len(keys), dtype=bool)
    new[0] = True
    numpy.not_equal(keys[1:], keys[:-1], out=new[1:])
    counts = numpy.bincount(
        (keys[new] >> shift).astype(numpy.intp), minlength=len(compiled.pid_order)
    )
    return [int(count) for count in counts]


# ---------------------------------------------------------------------------
# Cache passes (previous-occurrence analysis)
# ---------------------------------------------------------------------------


def cache_pass(compiled, num_sets, offsetting, amax):
    """Per-pid within-set LRU depth histogram plus per-set key counts.

    Returns ``(hist, setkey_hist)``: ``hist[i][j]`` counts pid ``i``'s
    accesses at within-set recency depth ``j`` (depth = distinct other
    keys touched in the set since this key's last access; bucket
    ``amax`` holds first accesses and any depth >= amax), so the miss
    count at associativity ``A <= amax`` is ``sum(hist[i][A:])``.
    ``setkey_hist[j]`` counts sets holding ``min(distinct keys, amax) == j``
    — the A-independent form of final occupancy, since every distinct
    key is filled at least once and sets only lose entries to
    invalidation (never here: no pinning limit, no unpins).
    """
    views = compiled.numpy_views() if (amax == 1 and _numpy() is not None) else None
    if views is not None:
        return _cache_pass_numpy(compiled, views, num_sets, offsetting)
    return _cache_pass_python(compiled, num_sets, offsetting, amax)


def _cache_pass_numpy(compiled, views, num_sets, offsetting):
    """Vectorized direct-mapped pass: stable sort by set, compare
    neighbours.  Within one set the stable order is time order, so an
    access misses iff it is the set's first or the previous same-set
    access used a different key."""
    numpy = _numpy()
    idx, pages = views
    if offsetting:
        offsets = numpy.array(pid_offsets(compiled, num_sets, True), dtype=numpy.uint64)
        hashed = pages + offsets[idx]
    else:
        hashed = pages
    sets = hashed % numpy.uint64(num_sets)
    shift = numpy.uint64(key_shift(compiled))
    keys = (idx.astype(numpy.uint64) << shift) | pages
    sort = numpy.argsort(sets, kind="stable")
    s_sorted = sets[sort]
    k_sorted = keys[sort]
    new_set = numpy.empty(len(sort), dtype=bool)
    new_set[0] = True
    numpy.not_equal(s_sorted[1:], s_sorted[:-1], out=new_set[1:])
    miss_sorted = new_set.copy()
    miss_sorted[1:] |= k_sorted[1:] != k_sorted[:-1]
    misses = numpy.bincount(idx[sort][miss_sorted], minlength=len(compiled.pid_order))
    hist = [
        [len(compiled.streams[pid]) - int(misses[i]), int(misses[i])]
        for i, pid in enumerate(compiled.pid_order)
    ]
    return hist, [0, int(new_set.sum())]


def _cache_pass_python(compiled, num_sets, offsetting, amax):
    """Pure-Python pass; exact for any associativity.

    Each set keeps its ``amax`` most recently used distinct keys in
    order (the LRU inclusion property makes that list the set contents
    at *every* associativity up to ``amax`` simultaneously); a linear
    probe of a <= 4-element list is the whole per-access cost.
    """
    order = compiled.pid_order
    npids = len(order)
    offsets = pid_offsets(compiled, num_sets, offsetting)
    shift = key_shift(compiled)
    keybase = [i << shift for i in range(npids)]
    hist = [[0] * (amax + 1) for _ in range(npids)]
    recency = {}  # set index -> MRU-first key list
    seen = set()  # keys ever accessed (first-fill detection)
    setkeys = {}  # set index -> min(distinct keys, amax)

    if amax == 1:
        for i, v in zip(compiled.index_stream, compiled.page_stream):
            s = (v + offsets[i]) % num_sets
            key = keybase[i] | v
            if recency.get(s) != key:
                recency[s] = key
                hist[i][1] += 1
            else:
                hist[i][0] += 1
        return hist, [0, len(recency)]

    for i, v in zip(compiled.index_stream, compiled.page_stream):
        s = (v + offsets[i]) % num_sets
        key = keybase[i] | v
        stack = recency.get(s)
        if stack is None:
            stack = recency[s] = []
        try:
            pos = stack.index(key)
        except ValueError:
            pos = amax
        if pos < amax:
            hist[i][pos] += 1
            if pos:
                del stack[pos]
                stack.insert(0, key)
        else:
            hist[i][amax] += 1
            stack.insert(0, key)
            if len(stack) > amax:
                stack.pop()
            if key not in seen:
                seen.add(key)
                count = setkeys.get(s, 0)
                if count < amax:
                    setkeys[s] = count + 1
    setkey_hist = [0] * (amax + 1)
    for count in setkeys.values():
        setkey_hist[count] += 1
    return hist, setkey_hist


# ---------------------------------------------------------------------------
# Byte-identical materialization
# ---------------------------------------------------------------------------


def pid_stats_dict(n, check_misses, ni_misses, unpins, unit):
    """One pid's ``TranslationStats.to_dict()``, rebuilt from counts.

    Every fast-engine time field accumulates a single constant — check
    0.5, NIC probe 0.8, pin(1), unpin(1), miss(1) — and repeated float
    addition of one constant depends only on the count, so
    :func:`accumulated_cost` lands on the identical bits.
    """
    return {
        "lookups": n,
        "check_misses": check_misses,
        "ni_accesses": n,
        "ni_hits": n - ni_misses,
        "ni_misses": ni_misses,
        "ni_evictions": 0,
        "pin_calls": check_misses,
        "pages_pinned": check_misses,
        "unpin_calls": unpins,
        "pages_unpinned": unpins,
        "interrupts": 0,
        "entries_fetched": ni_misses,
        "check_time_us": accumulated_cost(unit["check"], n),
        "pin_time_us": accumulated_cost(unit["pin"], check_misses),
        "unpin_time_us": accumulated_cost(unit["unpin"], unpins),
        "ni_hit_time_us": accumulated_cost(unit["ni_hit"], n),
        "ni_miss_time_us": accumulated_cost(unit["miss"], ni_misses),
        "interrupt_time_us": 0.0,
    }


def cache_dict(accesses, misses, evictions, invalidations):
    """A ``CacheStats.snapshot()`` twin (every lookup fills on a miss)."""
    return {
        "accesses": accesses,
        "hits": accesses - misses,
        "misses": misses,
        "evictions": evictions,
        "invalidations": invalidations,
        "fills": misses,
        "miss_rate": misses / accesses if accesses else 0.0,
    }


def node_dict(pid_rows, cache):
    """A ``NodeResult.to_dict()`` twin from sorted per-pid stat rows.

    The merged floats must sum in sorted-pid order — the order
    ``TranslationStats.merged`` sees, since the simulator builds its
    per-pid dict over sorted pids.
    """
    merged = dict.fromkeys(TranslationStats.FIELDS, 0)
    for field in TranslationStats.TIME_FIELDS:
        merged[field] = 0.0
    for _pid, row in pid_rows:
        for field in TranslationStats.FIELDS:
            merged[field] += row[field]
        for field in TranslationStats.TIME_FIELDS:
            merged[field] += row[field]
    return {
        "stats": merged,
        "per_pid": {str(pid): row for pid, row in pid_rows},
        "cache": cache,
        "breakdown": None,
    }


def materialize_cache(compiled, geometry, pass_data, n, firsts, unit):
    """Read one (entries, assoc, offsetting) cell off its shared pass."""
    entries, assoc, offsetting = geometry
    hist, setkey_hist = pass_data[(entries // assoc, offsetting)]
    index_of = {pid: i for i, pid in enumerate(compiled.pid_order)}
    rows = []
    misses = 0
    accesses = 0
    for pid in compiled.pids:
        i = index_of[pid]
        ni = sum(hist[i][assoc:])
        rows.append((pid, pid_stats_dict(n[i], firsts[i], ni, 0, unit)))
        misses += ni
        accesses += n[i]
    occupied = sum(
        (assoc if j > assoc else j) * count for j, count in enumerate(setkey_hist)
    )
    evictions = misses - occupied
    return node_dict(rows, cache_dict(accesses, misses, evictions, 0))


# ---------------------------------------------------------------------------
# The per-cell replay kernel
# ---------------------------------------------------------------------------


def replay_node_dict(compiled, config):
    """One eligible cell, answered entirely from its compiled streams.

    Returns a ``NodeResult.to_dict()``-shaped dict byte-identical to
    what fast replay of the same cell would produce: with no pinning
    limit every distinct page is a compulsory check miss (= one pin),
    nothing is ever unpinned or invalidated, NIC misses come from the
    previous-occurrence cache pass, and final occupancy (for the
    eviction count) from the same pass's per-set key counts.  The
    caller has already established eligibility
    (:func:`utlb_kernel_eligible` plus the engine/tracer gate).
    """
    if len(compiled.pids) > params.MAX_PROCESSES_PER_NIC:
        raise CapacityError(
            "node trace has %d processes; the NIC tag space holds %d"
            % (len(compiled.pids), params.MAX_PROCESSES_PER_NIC)
        )
    if not compiled.pids:
        return node_dict([], cache_dict(0, 0, 0, 0))
    unit = config.cost_model.unit_costs()
    assoc = config.associativity
    geometry = (config.cache_entries, assoc, bool(config.offsetting))
    num_sets = config.cache_entries // assoc
    pass_data = {
        (num_sets, geometry[2]): cache_pass(compiled, num_sets, geometry[2], assoc),
    }
    n = [len(compiled.streams[pid]) for pid in compiled.pid_order]
    firsts = stream_firsts(compiled)
    return materialize_cache(compiled, geometry, pass_data, n, firsts, unit)
