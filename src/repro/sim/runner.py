"""Parallel sweep engine with on-disk result caching and run metrics.

The paper's evaluation (Tables 4-8, Figures 7-8) is a grid of *cells*:
one ``(traces, config, mechanism)`` replay each.  Cells are mutually
independent, and so are the nodes inside one cell — each node replays its
own merged trace against a fresh NIC.  :class:`SweepRunner` exploits both
facts: every node replay becomes one work unit, fanned out over a
``multiprocessing`` pool.  ``workers=1`` degenerates to a plain serial
loop in submission order, the determinism baseline parallel runs are
diffed against.

Results travel as JSON-safe dicts (``NodeResult.to_dict``) in *all three*
paths — serial, cross-process, and cached — so a warm cache run is
byte-identical to a cold one by construction.

The cache key is a content hash of everything that can change a cell's
outcome: the per-node trace fingerprints, every :class:`SimConfig` field
(cost-model constants included), the mechanism, and a digest of the
simulator/core source files ("code version").  Any edit to any input
yields a fresh key; stale entries are simply never read again.

:class:`SweepMetrics` records what actually happened — per-cell wall
time, cache hit or miss, worker count, and a stats snapshot — as the
machine-readable report ``python -m repro --metrics-json`` dumps and the
benchmarks attach to their results.
"""

import hashlib
import json
import os
import re
import time
from multiprocessing import get_context

from repro.errors import ConfigError
from repro.obs.tracer import JsonlTracer
from repro.sim.intr_simulator import simulate_node_intr
from repro.sim.pp_simulator import simulate_node_pp
from repro.sim.simulator import ClusterResult, simulate_node
from repro.traces.compile import compile_streams

#: node-replay entry point per mechanism (Sections 3.1, 4, and 6).
SIMULATORS = {
    "utlb": simulate_node,
    "intr": simulate_node_intr,
    "pp": simulate_node_pp,
}

MECHANISMS = tuple(SIMULATORS)

#: Mechanisms whose replay emits the obs event stream (``trace_dir``).
TRACEABLE_MECHANISMS = ("utlb", "intr")

#: Phase keys of the per-cell timing breakdown.
PHASES = ("compile_s", "replay_s", "report_s")

#: Cache entry layout version; bump to orphan every existing entry.
CACHE_FORMAT = 1

_CODE_VERSION = None


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

def trace_fingerprint(records):
    """Content hash of one node's trace (order-sensitive, as replay is)."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(repr(record.as_tuple()).encode("ascii"))
    return digest.hexdigest()


def code_version():
    """Digest of every source file whose behaviour a cached cell bakes in.

    Covers ``repro.core`` and ``repro.cachesim`` wholesale plus the replay
    entry points and the trace record/merge modules.  Editing any of them
    invalidates the whole cache (by changing every key), which is the
    safe direction to fail in.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        sim_dir = os.path.dirname(os.path.abspath(__file__))
        repro_dir = os.path.dirname(sim_dir)
        paths = []
        for package in ("core", "cachesim"):
            root = os.path.join(repro_dir, package)
            paths.extend(os.path.join(root, name)
                         for name in sorted(os.listdir(root))
                         if name.endswith(".py"))
        paths.extend(os.path.join(sim_dir, name)
                     for name in ("config.py", "intr_simulator.py",
                                  "pp_simulator.py", "runner.py",
                                  "simulator.py"))
        paths.extend(os.path.join(repro_dir, "traces", name)
                     for name in ("compile.py", "merge.py", "record.py"))
        digest = hashlib.sha256()
        for path in paths:
            digest.update(os.path.basename(path).encode("ascii"))
            with open(path, "rb") as handle:
                digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def cell_key(traces, config, mechanism):
    """The cache key: a hash over every input that shapes the result."""
    payload = {
        "format": CACHE_FORMAT,
        "code": code_version(),
        "mechanism": mechanism,
        "config": config.to_dict(),
        "traces": {str(node): trace_fingerprint(traces[node])
                   for node in sorted(traces)},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def default_cache_dir():
    """``REPRO_CACHE_DIR`` or ``$XDG_CACHE_HOME/repro/sweeps``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    base = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro", "sweeps")


# ---------------------------------------------------------------------------
# The on-disk result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Finished cells as one JSON file per key under ``directory``."""

    def __init__(self, directory):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def load(self, key):
        """The cached :class:`ClusterResult`, or None on a miss."""
        try:
            with open(self._path(key), "r", encoding="ascii") as handle:
                payload = json.load(handle)
            result = ClusterResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key, result, meta=None):
        """Persist a finished cell (atomic rename; concurrent-run safe)."""
        os.makedirs(self.directory, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "meta": meta or {},
            "result": result.to_dict(),
        }
        tmp = self._path(key) + ".tmp.%d" % os.getpid()
        with open(tmp, "w", encoding="ascii") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self._path(key))

    def __len__(self):
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".json"))
        except OSError:
            return 0


# ---------------------------------------------------------------------------
# Structured run metrics
# ---------------------------------------------------------------------------

class CellMetrics:
    """What one cell cost: identity, cache outcome, wall time, stats."""

    def __init__(self, label, mechanism, config, nodes):
        self.label = label
        self.mechanism = mechanism
        self.config = config.describe()
        self.nodes = nodes
        self.cache_hit = False
        self.wall_time_s = 0.0
        self.lookups = 0
        self.stats = None               # TranslationStats snapshot (dict)
        #: Per-phase wall-time breakdown (stream compilation, replay
        #: proper, result serialization); zeros for cache hits.
        self.phases = dict.fromkeys(PHASES, 0.0)
        self.trace_path = None          # JSONL event dump, if traced

    @property
    def pages_per_sec(self):
        """Replay throughput: translation lookups (pages) per wall second.

        Zero for cache hits and empty cells — it measures replay speed,
        not cache-load speed.
        """
        if self.cache_hit or self.wall_time_s <= 0.0:
            return 0.0
        return self.lookups / self.wall_time_s

    def to_dict(self):
        return {
            "label": str(self.label),
            "mechanism": self.mechanism,
            "config": self.config,
            "nodes": self.nodes,
            "cache_hit": self.cache_hit,
            "wall_time_s": self.wall_time_s,
            "phases": dict(self.phases),
            "trace_path": self.trace_path,
            "lookups": self.lookups,
            "pages_per_sec": self.pages_per_sec,
            "stats": self.stats,
        }


class SweepMetrics:
    """Machine-readable record of every cell a runner executed."""

    def __init__(self, workers):
        self.workers = workers
        self.cells = []

    def record(self, cell_metrics):
        self.cells.append(cell_metrics)

    @property
    def cache_hits(self):
        return sum(1 for c in self.cells if c.cache_hit)

    @property
    def cache_misses(self):
        return sum(1 for c in self.cells if not c.cache_hit)

    @property
    def wall_time_s(self):
        return sum(c.wall_time_s for c in self.cells)

    @property
    def pages_per_sec(self):
        """Aggregate replay throughput over the cells actually replayed."""
        replayed = [c for c in self.cells if not c.cache_hit]
        seconds = sum(c.wall_time_s for c in replayed)
        if seconds <= 0.0:
            return 0.0
        return sum(c.lookups for c in replayed) / seconds

    def to_dict(self):
        phase_totals = dict.fromkeys(PHASES, 0.0)
        for cell in self.cells:
            for phase in PHASES:
                phase_totals[phase] += cell.phases[phase]
        return {
            "workers": self.workers,
            "cells": [c.to_dict() for c in self.cells],
            "totals": {
                "cells": len(self.cells),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "wall_time_s": self.wall_time_s,
                "phases": phase_totals,
                "lookups": sum(c.lookups for c in self.cells),
                "pages_per_sec": self.pages_per_sec,
            },
        }


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

class SweepCell:
    """One sweep cell: a label plus the replay inputs."""

    __slots__ = ("label", "traces", "config", "mechanism")

    def __init__(self, label, traces, config, mechanism="utlb"):
        if mechanism not in SIMULATORS:
            raise ConfigError("unknown mechanism %r (use one of %s)"
                              % (mechanism, MECHANISMS))
        self.label = label
        self.traces = traces
        self.config = config
        self.mechanism = mechanism


def _replay_unit(args, compile_memo=None):
    """One work unit: replay a single node's trace (runs in a worker).

    Returns ``(phases, NodeResult.to_dict())`` — ``phases`` is the
    per-phase wall-time dict (compile / replay / report) and the dict
    form is the single transport format for serial, parallel, and cached
    results.

    ``compile_memo`` (serial runs only) shares compiled page streams
    between cells replaying the same node trace: sweeps replay one trace
    under many configs, so each trace is compiled once per batch instead
    of once per cell.  Keyed by list identity, which is stable here — the
    cells hold the record lists alive for the whole batch and the memo
    dies with it.  The first compile still lands inside the unit's
    compile phase; memo hits cost (and report) ~nothing.
    """
    records, config, mechanism = args
    phases = dict.fromkeys(PHASES, 0.0)
    compiled = None
    if (config.engine == "fast" and not config.traced
            and mechanism in TRACEABLE_MECHANISMS):
        start = time.perf_counter()
        if compile_memo is not None:
            key = id(records)
            compiled = compile_memo.get(key)
            if compiled is None:
                compiled = compile_memo[key] = compile_streams(records)
        else:
            compiled = compile_streams(records)
        phases["compile_s"] = time.perf_counter() - start
    start = time.perf_counter()
    if compiled is not None:
        result = SIMULATORS[mechanism](records, config, compiled=compiled)
    else:
        result = SIMULATORS[mechanism](records, config)
    phases["replay_s"] = time.perf_counter() - start
    start = time.perf_counter()
    node_dict = result.to_dict()
    phases["report_s"] = time.perf_counter() - start
    return phases, node_dict


class SweepRunner:
    """Execute sweep cells — optionally in parallel — with caching.

    Parameters
    ----------
    workers:
        Worker processes.  1 (the default) runs every unit serially in
        the calling process; parallel and serial runs produce identical
        results, which the determinism tests diff directly.
    cache_dir:
        Directory for the on-disk result cache, or None to disable
        caching entirely.
    mp_context:
        ``multiprocessing`` start method ("fork", "spawn", ...); None
        uses the platform default.
    trace_dir:
        Directory to dump one JSONL event stream per traceable cell
        (``repro.obs`` events), or None (the default) for no tracing.
        Traced cells replay through the event-emitting reference engine,
        serially and uncached — the trace is the point, and a cache hit
        or out-of-order parallel replay would lose or scramble it.
    """

    def __init__(self, workers=1, cache_dir=None, mp_context=None,
                 trace_dir=None):
        if workers < 1:
            raise ConfigError("workers must be at least 1, got %r"
                              % (workers,))
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.metrics = SweepMetrics(workers)
        self.trace_dir = trace_dir
        self._trace_names = set()
        self._mp_context = mp_context
        self._pool = None

    # -- lifecycle ----------------------------------------------------------

    def close(self):
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _pool_handle(self):
        if self._pool is None:
            context = get_context(self._mp_context)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    # -- tracing ------------------------------------------------------------

    def _open_cell_tracer(self, cell):
        """A fresh :class:`JsonlTracer` for one traceable cell, or None.

        Cells that already carry their own enabled tracer keep it (the
        caller owns that one); ``pp`` cells are never traced — the
        pool-of-pins model predates the event stream.  File names are
        slugified cell labels, suffixed on collision so a sweep with
        repeated labels still gets one file per cell.
        """
        if (self.trace_dir is None or cell.config.traced
                or cell.mechanism not in TRACEABLE_MECHANISMS):
            return None
        slug = re.sub(r"[^A-Za-z0-9._-]+", "-", str(cell.label)).strip("-")
        base = "%s.%s" % (slug or "cell", cell.mechanism)
        name = base + ".jsonl"
        serial = 1
        while name in self._trace_names:
            serial += 1
            name = "%s.%d.jsonl" % (base, serial)
        self._trace_names.add(name)
        os.makedirs(self.trace_dir, exist_ok=True)
        return JsonlTracer(os.path.join(self.trace_dir, name))

    # -- execution ----------------------------------------------------------

    def run(self, traces, config, mechanism="utlb", label=None):
        """Replay one cell; returns its :class:`ClusterResult`."""
        return self.run_cells(
            [SweepCell(label, traces, config, mechanism)])[0]

    def run_cells(self, cells):
        """Replay many cells; returns their results in submission order.

        ``cells`` holds :class:`SweepCell` objects or plain
        ``(label, traces, config, mechanism)`` tuples.  Cached cells are
        answered from disk; the remaining node replays are flattened into
        one work-unit list and executed serially (``workers=1``) or over
        the pool — either way in deterministic order.
        """
        cells = [c if isinstance(c, SweepCell) else SweepCell(*c)
                 for c in cells]
        results = [None] * len(cells)
        keys = [None] * len(cells)
        configs = [cell.config for cell in cells]   # effective per cell
        owned_tracers = []
        cell_metrics = []
        pending = []
        try:
            for index, cell in enumerate(cells):
                metrics = CellMetrics(cell.label, cell.mechanism,
                                      cell.config, len(cell.traces))
                cell_metrics.append(metrics)
                tracer = self._open_cell_tracer(cell)
                if tracer is not None:
                    owned_tracers.append(tracer)
                    configs[index] = cell.config.replace(tracer=tracer)
                    metrics.trace_path = tracer.path
                # A traced cell must actually replay: a cache hit would
                # return the numbers but lose the event stream.
                if self.cache is not None and not configs[index].traced:
                    start = time.perf_counter()
                    keys[index] = cell_key(cell.traces, cell.config,
                                           cell.mechanism)
                    cached = self.cache.load(keys[index])
                    if cached is not None:
                        results[index] = cached
                        metrics.cache_hit = True
                        metrics.wall_time_s = time.perf_counter() - start
                        metrics.lookups = cached.stats.lookups
                        metrics.stats = cached.stats.snapshot()
                        continue
                pending.append(index)

            units = []                  # (cell index, node) per work unit
            unit_args = []
            for index in pending:
                cell = cells[index]
                for node in sorted(cell.traces):
                    units.append((index, node))
                    unit_args.append((cell.traces[node], configs[index],
                                      cell.mechanism))

            if not unit_args:
                outcomes = []
            elif self.workers == 1 or len(unit_args) == 1:
                compile_memo = {}
                outcomes = [_replay_unit(args, compile_memo)
                            for args in unit_args]
            else:
                # Traced units hold live tracers (unpicklable, and their
                # events must land in node order), so they run here in
                # submission order; the rest fan out over the pool.
                outcomes = [None] * len(unit_args)
                pooled = [i for i, args in enumerate(unit_args)
                          if not args[1].traced]
                if pooled:
                    for i, outcome in zip(
                            pooled, self._pool_handle().map(
                                _replay_unit,
                                [unit_args[i] for i in pooled])):
                        outcomes[i] = outcome
                for i, args in enumerate(unit_args):
                    if outcomes[i] is None:
                        outcomes[i] = _replay_unit(args)

            node_dicts = {index: [] for index in pending}
            for (index, _node), (phases, node_dict) in zip(units, outcomes):
                node_dicts[index].append(node_dict)
                metrics = cell_metrics[index]
                for phase in PHASES:
                    metrics.phases[phase] += phases[phase]
                metrics.wall_time_s += sum(phases.values())

            for index in pending:
                result = ClusterResult.from_dict(
                    {"nodes": node_dicts[index]})
                results[index] = result
                metrics = cell_metrics[index]
                metrics.lookups = result.stats.lookups
                metrics.stats = result.stats.snapshot()
                if self.cache is not None and keys[index] is not None:
                    self.cache.store(keys[index], result, meta={
                        "label": str(cells[index].label),
                        "mechanism": cells[index].mechanism,
                        "config": cells[index].config.describe(),
                        "wall_time_s": metrics.wall_time_s,
                    })
        finally:
            for tracer in owned_tracers:
                tracer.close()

        for metrics in cell_metrics:
            self.metrics.record(metrics)
        return results


# ---------------------------------------------------------------------------
# The process-wide default (what legacy call sites fall back to)
# ---------------------------------------------------------------------------

_DEFAULT_RUNNER = None


def default_runner():
    """A shared runner for call sites that pass none.

    Serial and cache-less unless ``REPRO_WORKERS`` asks for parallelism,
    so existing code keeps its exact behaviour by default.
    """
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1"))
        _DEFAULT_RUNNER = SweepRunner(workers=workers)
    return _DEFAULT_RUNNER
