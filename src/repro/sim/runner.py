"""Parallel sweep engine with on-disk result caching and run metrics.

The paper's evaluation (Tables 4-8, Figures 7-8) is a grid of *cells*:
one ``(traces, config, mechanism)`` replay each.  Cells are mutually
independent, and so are the nodes inside one cell — each node replays its
own merged trace against a fresh NIC.  :class:`SweepRunner` exploits both
facts: every node replay becomes one work unit, fanned out over a
``multiprocessing`` pool.  ``workers=1`` degenerates to a plain serial
loop in submission order, the determinism baseline parallel runs are
diffed against.

Results travel as JSON-safe dicts (``NodeResult.to_dict``) in *all three*
paths — serial, cross-process, and cached — so a warm cache run is
byte-identical to a cold one by construction.

Before any replay is scheduled, an *axis-solver tier* intercepts eligible
groups of cells: cells that replay the same traces under configs
differing only along one sweep axis (``memory_limit_bytes``, or the
cache geometry) with default-path LRU settings are answered by
``repro.sim.analytic`` — one Mattson-style pass per node for the whole
axis instead of one replay per cell, byte-identical by construction (the
determinism tests diff them directly).  Everything else falls through to
per-cell replay unchanged, and solved cells still land in the result
cache.

Trace *inputs* travel the cheap way: a sweep replays the same handful of
node traces under dozens of configurations, so the runner compiles each
distinct trace exactly once per batch (keyed by content fingerprint),
publishes the compiled streams to a per-batch
:class:`~repro.sim.stream_store.SharedStreamStore`, and sends workers
only ``(stream_key, config, mechanism)``.  Workers attach read-only in
the pool initializer and replay the parent's arrays in place — no
per-cell pickling, no per-worker recompilation.  Units are scheduled
largest-trace-first to keep a straggler from serializing the tail;
results are still reassembled in submission order.

Cell traces may be record *lists* or re-iterable lazy sources
(:class:`~repro.traces.synth.base.StreamingNodeTrace`): fingerprinting,
compilation, and replay all consume plain iteration, and after a pooled
batch publishes its compiled streams the parent swaps its own compile
memo for views over the shared blocks — so with streaming sources the
full record list never exists in any process and peak memory is bounded
by the compiled arrays (8 bytes/lookup), not the ~100x-larger record
objects.

The cache key is a content hash of everything that can change a cell's
outcome: the per-node trace fingerprints, every :class:`SimConfig` field
(cost-model constants included), the mechanism, and a digest of the
simulator/core source files ("code version").  Any edit to any input
yields a fresh key; stale entries are simply never read again.

:class:`SweepMetrics` records what actually happened — per-cell timings,
cache hit or miss, compile and IPC accounting, batch wall clock — as the
machine-readable report ``python -m repro --metrics-json`` dumps and the
benchmarks attach to their results.
"""

import atexit
import hashlib
import json
import os
import re
import struct
import time
from multiprocessing import get_context

from repro.errors import ConfigError
from repro.obs.tracer import JsonlTracer
from repro.sim import mechanisms as mech_registry
from repro.sim.analytic import plan_axes, solve_axis_node
from repro.sim.mechanisms import mechanism_names, resolve
from repro.sim.simulator import ClusterResult
from repro.sim.stream_store import AttachedStreams, SharedStreamStore
from repro.traces.compile import compile_streams
from repro.traces.record import OP_CODES, count_lookups

#: Registered mechanism names at import time (see
#: :mod:`repro.sim.mechanisms` — the registry is the authority; this
#: tuple survives as the convenient CLI-choices form).
MECHANISMS = mechanism_names()

#: Phase keys of the per-cell timing breakdown.
PHASES = ("compile_s", "replay_s", "report_s")

#: Cache entry layout version; bump to orphan every existing entry.
#: 2: ``trace_fingerprint`` switched from per-record ``repr`` strings to
#: packed record bytes.
#: 3: ``SimConfig.to_dict`` grew the ``mechanism`` field (the registry
#: refactor made the mechanism part of the config).
CACHE_FORMAT = 3

_CODE_VERSION = None


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

#: One trace record, packed for fingerprinting: timestamp, node, pid
#: (signed — pids are caller-chosen), op code, vaddr, nbytes.
_FINGERPRINT_RECORD = struct.Struct("<QqqBQQ")


#: Packed records buffered between digest updates while fingerprinting.
#: Small enough (a few hundred KB) to be memory noise, big enough that
#: ``sha256.update`` call overhead never shows in profiles.
_FINGERPRINT_CHUNK = 8192


def trace_fingerprint(records):
    """Content hash of one node's trace (order-sensitive, as replay is).

    Hashes the packed binary form of each record — one ``struct.pack``
    per record instead of building a ``repr()`` string, which is what
    made fingerprinting show up in sweep profiles.  The digest is fed in
    fixed-size chunks, so ``records`` may be any (re-)iterable — a list,
    or a lazy :class:`~repro.traces.synth.base.StreamingNodeTrace` —
    and peak memory stays O(chunk), never O(records); the hexdigest is
    identical either way (sha256 is stream-order defined).  Falls back
    to the repr form for exotic field values the packed layout cannot
    hold (e.g. a pid beyond 64 bits), re-iterating the input — which is
    why the streaming protocol demands re-iterability; both forms are
    stable content hashes, and ``CACHE_FORMAT`` was bumped when the
    packed form became the default, so no old key can collide with a
    new one.
    """
    digest = hashlib.sha256()
    pack = _FINGERPRINT_RECORD.pack
    try:
        chunk = []
        append = chunk.append
        for r in records:
            append(pack(r.timestamp, r.node, r.pid, OP_CODES[r.op],
                        r.vaddr, r.nbytes))
            if len(chunk) >= _FINGERPRINT_CHUNK:
                digest.update(b"".join(chunk))
                del chunk[:]
        if chunk:
            digest.update(b"".join(chunk))
    except (struct.error, OverflowError):
        digest = hashlib.sha256(b"repr-fallback:")
        for record in records:
            digest.update(repr(record.as_tuple()).encode("ascii"))
    return digest.hexdigest()


def code_version():
    """Digest of every source file whose behaviour a cached cell bakes in.

    Covers ``repro.core`` and ``repro.cachesim`` wholesale plus the replay
    entry points and the trace record/merge modules.  Editing any of them
    invalidates the whole cache (by changing every key), which is the
    safe direction to fail in.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        sim_dir = os.path.dirname(os.path.abspath(__file__))
        repro_dir = os.path.dirname(sim_dir)
        paths = []
        for package in ("core", "cachesim"):
            root = os.path.join(repro_dir, package)
            paths.extend(os.path.join(root, name)
                         for name in sorted(os.listdir(root))
                         if name.endswith(".py"))
        paths.extend(os.path.join(sim_dir, name)
                     for name in ("analytic.py", "config.py",
                                  "intr_simulator.py", "kernels.py",
                                  "mechanisms.py", "pp_simulator.py",
                                  "runner.py", "simulator.py"))
        paths.extend(os.path.join(repro_dir, "traces", name)
                     for name in ("compile.py", "merge.py", "record.py"))
        digest = hashlib.sha256()
        for path in paths:
            digest.update(os.path.basename(path).encode("ascii"))
            with open(path, "rb") as handle:
                digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def cell_key(traces, config, mechanism, fingerprints=None):
    """The cache key: a hash over every input that shapes the result.

    ``fingerprints`` optionally supplies precomputed per-node trace
    fingerprints (``{node: hexdigest}``); the runner passes the ones it
    already computed for the compile memo so each trace is hashed once
    per batch, not once per purpose.
    """
    if fingerprints is None:
        fingerprints = {node: trace_fingerprint(traces[node])
                        for node in traces}
    payload = {
        "format": CACHE_FORMAT,
        "code": code_version(),
        "mechanism": mechanism,
        "config": config.to_dict(),
        "traces": {str(node): fingerprints[node]
                   for node in sorted(traces)},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


def default_cache_dir():
    """``REPRO_CACHE_DIR`` or ``$XDG_CACHE_HOME/repro/sweeps``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    base = os.environ.get(
        "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro", "sweeps")


def workers_from_env(default=1):
    """Worker count from ``REPRO_WORKERS``, validated.

    A value that is not an integer, or is below 1, raises
    :class:`ConfigError` naming the offending value — a typo'd
    environment variable should fail loudly, not crash as a bare
    ``ValueError`` deep inside runner construction.
    """
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return default
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            "REPRO_WORKERS must be an integer, got %r" % (raw,)) from None
    if workers < 1:
        raise ConfigError(
            "REPRO_WORKERS must be at least 1, got %r" % (raw,))
    return workers


# ---------------------------------------------------------------------------
# The on-disk result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Finished cells as one JSON file per key under ``directory``."""

    def __init__(self, directory):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        #: Entries that existed but failed to parse (corrupt/truncated).
        #: Distinct from a plain miss; the broken file is deleted on
        #: sight so the next run re-misses cleanly and re-stores.
        self.corrupt = 0

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def load(self, key):
        """The cached :class:`ClusterResult`, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="ascii") as handle:
                payload = json.load(handle)
            result = ClusterResult.from_dict(payload["result"])
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError):
            self.corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, key, result, meta=None):
        """Persist a finished cell (atomic rename; concurrent-run safe)."""
        os.makedirs(self.directory, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "meta": meta or {},
            "result": result.to_dict(),
        }
        tmp = self._path(key) + ".tmp.%d" % os.getpid()
        with open(tmp, "w", encoding="ascii") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self._path(key))

    def __len__(self):
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".json"))
        except OSError:
            return 0


# ---------------------------------------------------------------------------
# Structured run metrics
# ---------------------------------------------------------------------------

class CellMetrics:
    """What one cell cost: identity, cache outcome, timings, stats."""

    def __init__(self, label, mechanism, config, nodes):
        self.label = label
        self.mechanism = mechanism
        self.config = config.describe()
        self.nodes = nodes
        self.cache_hit = False
        #: Summed phase time of this cell's units.  Under ``workers>1``
        #: the units run concurrently, so this is CPU time, not elapsed
        #: wall clock — the batch-level ``elapsed_s`` is the wall clock.
        self.wall_time_s = 0.0
        self.lookups = 0
        self.stats = None               # TranslationStats snapshot (dict)
        #: Per-phase wall-time breakdown (stream compilation, replay
        #: proper, result serialization); zeros for cache hits.
        self.phases = dict.fromkeys(PHASES, 0.0)
        self.trace_path = None          # JSONL event dump, if traced
        #: Fresh ``compile_streams`` passes this cell triggered.  A batch
        #: compiles each distinct trace once, charged to the first cell
        #: that needed it; every later cell sharing the trace records 0.
        self.compile_count = 0
        #: Bytes published to the shared-memory stream store on this
        #: cell's behalf (0 for serial runs — no IPC — and for cells
        #: whose streams an earlier cell already published).
        self.ipc_bytes = 0
        #: True when the cell was answered by the analytic axis solver
        #: (one shared pass) instead of its own replay.
        self.analytic = False
        #: True when the cell's replay dispatched to the vectorized
        #: batch kernels (``engine="kernel"`` and the mechanism's
        #: ``kernel_eligible`` predicate held); False for fast-path
        #: fallbacks, analytic cells, and cache hits.
        self.kernel = False
        #: Run-unique id of the analytic axis that answered this cell
        #: (None for replayed cells).  Cells sharing an ``axis_id`` were
        #: solved by one pass whose cost is attributed *equally across
        #: them* — per-cell times are that share, and summing members
        #: recovers the true solve cost.
        self.axis_id = None

    @property
    def pages_per_sec(self):
        """Replay throughput: translation lookups (pages) per CPU second
        of this cell's units (their summed phase time).

        Zero for cache hits and empty cells — it measures replay speed,
        not cache-load speed.  Analytic cells carry their equal share of
        the axis solve time (see ``axis_id``), so their throughput is
        the axis's effective per-cell rate, never a misleading zero.
        """
        if self.cache_hit or self.wall_time_s <= 0.0:
            return 0.0
        return self.lookups / self.wall_time_s

    def to_dict(self):
        return {
            "label": str(self.label),
            "mechanism": self.mechanism,
            "config": self.config,
            "nodes": self.nodes,
            "cache_hit": self.cache_hit,
            "wall_time_s": self.wall_time_s,
            "phases": dict(self.phases),
            # The compile/replay split, promoted out of ``phases`` so a
            # metrics consumer can read each cell's kernel win without
            # digging: compile time this cell was charged (its fresh
            # ``compile_streams`` passes) vs its replay time proper.
            "compile_s": self.phases["compile_s"],
            "replay_s": self.phases["replay_s"],
            "trace_path": self.trace_path,
            "lookups": self.lookups,
            "compile_count": self.compile_count,
            "ipc_bytes": self.ipc_bytes,
            "analytic": self.analytic,
            "kernel": self.kernel,
            "axis_id": self.axis_id,
            "pages_per_sec": self.pages_per_sec,
            "stats": self.stats,
        }


class SweepMetrics:
    """Machine-readable record of every cell a runner executed."""

    def __init__(self, workers):
        self.workers = workers
        self.cells = []
        #: True batch wall clock: elapsed seconds inside ``run_cells``,
        #: summed over batches.  Under parallelism this is what actually
        #: passed; ``cpu_time_s`` is what the workers collectively spent.
        self.elapsed_s = 0.0
        #: Cache entries that existed but failed to parse (see
        #: :class:`ResultCache`); mirrored here so ``--metrics-json``
        #: carries it.
        self.cache_corrupt = 0
        #: Axes the analytic solver collapsed (each one pass per node
        #: answering several cells); the per-cell side is the
        #: ``analytic`` flag on :class:`CellMetrics`.
        self.analytic_axes = 0

    def record(self, cell_metrics):
        self.cells.append(cell_metrics)

    @property
    def cache_hits(self):
        return sum(1 for c in self.cells if c.cache_hit)

    @property
    def cache_misses(self):
        return sum(1 for c in self.cells if not c.cache_hit)

    @property
    def analytic_cells(self):
        return sum(1 for c in self.cells if c.analytic)

    @property
    def kernel_cells(self):
        return sum(1 for c in self.cells if c.kernel)

    @property
    def cpu_time_s(self):
        """Summed per-unit phase time across all cells.

        With ``workers>1`` this exceeds the elapsed wall clock (units run
        concurrently) — it is the aggregate compute spent, the old
        ``wall_time_s`` total whose name promised otherwise.
        """
        return sum(c.wall_time_s for c in self.cells)

    @property
    def compile_count(self):
        """Fresh ``compile_streams`` passes across the run — equals the
        number of distinct node traces per batch, not cells x nodes."""
        return sum(c.compile_count for c in self.cells)

    @property
    def ipc_bytes(self):
        """Bytes published to shared-memory stream stores across the run."""
        return sum(c.ipc_bytes for c in self.cells)

    @property
    def pages_per_sec(self):
        """Sweep throughput: replayed lookups per elapsed wall second.

        Uses the batch wall clock (``elapsed_s``), so with ``workers>1``
        it reports the real aggregate rate rather than the per-worker
        rate the old summed-time quotient gave.  Zero when nothing was
        replayed (fully warm runs).
        """
        replayed = sum(c.lookups for c in self.cells if not c.cache_hit)
        if replayed == 0 or self.elapsed_s <= 0.0:
            return 0.0
        return replayed / self.elapsed_s

    def to_dict(self):
        phase_totals = dict.fromkeys(PHASES, 0.0)
        for cell in self.cells:
            for phase in PHASES:
                phase_totals[phase] += cell.phases[phase]
        return {
            "workers": self.workers,
            "cells": [c.to_dict() for c in self.cells],
            "totals": {
                "cells": len(self.cells),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_corrupt": self.cache_corrupt,
                "analytic_axes": self.analytic_axes,
                "analytic_cells": self.analytic_cells,
                "kernel_cells": self.kernel_cells,
                "cpu_time_s": self.cpu_time_s,
                "elapsed_s": self.elapsed_s,
                "phases": phase_totals,
                "lookups": sum(c.lookups for c in self.cells),
                "compile_count": self.compile_count,
                "ipc_bytes": self.ipc_bytes,
                "pages_per_sec": self.pages_per_sec,
            },
        }


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

class SweepCell:
    """One sweep cell: a label plus the replay inputs.

    ``mechanism`` may be a registered name, a
    :class:`~repro.sim.mechanisms.Mechanism`, or None to use the
    config's own ``mechanism`` field.  Either way the cell's config is
    kept in sync (``config.replace(mechanism=...)``), which runs the
    mechanism's eager validation — an ineligible combination fails here,
    not in a worker.
    """

    __slots__ = ("label", "traces", "config", "mechanism")

    def __init__(self, label, traces, config, mechanism=None):
        mech = resolve(config.mechanism if mechanism is None else mechanism)
        if config.mechanism != mech.name:
            config = config.replace(mechanism=mech.name)
        self.label = label
        self.traces = traces
        self.config = config
        self.mechanism = mech.name


def _streams_eligible(config, mechanism):
    """True when this unit's replay consumes compiled streams.

    Asks the mechanism descriptor (which mirrors the engine dispatch
    inside its simulator exactly): a unit marked eligible is shipped
    *without* its records (stream key only), so it must be one the fast
    compiled-stream path will actually take.  Unknown names — possible
    only by corrupting a cell after construction — are simply
    ineligible; dispatch fails loudly in the worker instead.
    """
    mech = mech_registry.lookup(mechanism)
    return mech is not None and mech.streams_eligible(config)


def _kernel_eligible(config, mechanism):
    """True when the cell's replay will dispatch to the batch kernels.

    The metrics-side mirror of the dispatch inside the mechanism's own
    ``simulate`` (the single source of truth): the runner never routes
    on this, it only tags :class:`CellMetrics` so kernel wins are
    attributable per cell.
    """
    mech = mech_registry.lookup(mechanism)
    return mech is not None and mech.kernel_eligible(config)


#: Worker-side registry of attached compiled streams, populated by the
#: pool initializer: ``{stream key: CompiledStreams}``.  The attachments
#: themselves are kept alive alongside (a dropped ``SharedMemory`` would
#: unmap the views); both die with the worker process.
_WORKER_STREAMS = {}
_WORKER_ATTACHMENTS = []


def _worker_detach():
    """Release stream views before interpreter teardown finalizes the
    mappings (``SharedMemory.__del__`` refuses to close a block with
    live memoryview exports)."""
    _WORKER_STREAMS.clear()
    attachments, _WORKER_ATTACHMENTS[:] = _WORKER_ATTACHMENTS[:], []
    for attached in attachments:
        attached.close()


def _worker_init(manifest):
    """Pool initializer: attach every published stream block read-only.

    ``manifest`` is ``SharedStreamStore.manifest()`` — it rides along at
    pool construction, so the blocks must be published *before* the pool
    exists (the runner recreates its pool whenever the manifest changes).
    """
    _worker_detach()
    atexit.register(_worker_detach)
    for key, name in manifest.items():
        attached = AttachedStreams(key, name)
        _WORKER_ATTACHMENTS.append(attached)
        _WORKER_STREAMS[key] = attached.compiled


def _run_unit(args, compiled=None):
    """Dispatch one tagged work unit (the pool's ``map`` target).

    ``args[0]`` is the unit kind: ``"replay"`` wraps the classic
    per-node replay (``args[1:]`` is its untagged argument tuple),
    ``"analytic"`` solves a whole axis for one node in one pass.  Both
    kinds resolve their compiled streams the same way — a direct
    ``compiled`` from the caller's memo (serial), or the worker-side
    registry via ``stream_key`` (pooled).
    """
    if args[0] == "analytic":
        return _analytic_unit(args, compiled)
    return _replay_unit(args[1:], compiled)


def _analytic_unit(args, compiled=None):
    """One axis-solver unit: every cell of one axis, for one node.

    ``args`` is ``("analytic", records, spec, stream_key)``.  Returns
    ``(phases, [node dict per axis cell])`` — the solve is charged as
    replay time, and the node dicts are already report-shaped, so the
    report phase is effectively free.
    """
    _kind, records, spec, stream_key = args
    if compiled is None:
        if records is None:
            compiled = _WORKER_STREAMS.get(stream_key)
            if compiled is None:
                raise RuntimeError(
                    "stream %s not attached in this worker (pool "
                    "initializer ran with a stale manifest?)"
                    % (stream_key,))
        else:
            compiled = compile_streams(records)
    phases = dict.fromkeys(PHASES, 0.0)
    start = time.perf_counter()
    payload = solve_axis_node(compiled, spec)
    phases["replay_s"] = time.perf_counter() - start
    return phases, payload


def _replay_unit(args, compiled=None):
    """One work unit: replay a single node's trace (runs in a worker).

    ``args`` is ``(records, config, mechanism, stream_key)``.  Exactly
    one of two transports feeds the fast engine its compiled streams:

    * serial runs pass ``compiled`` directly (the caller's per-batch
      compile memo — same process, no transport at all);
    * pooled runs ship ``records=None`` plus a ``stream_key`` into the
      worker-side registry the pool initializer filled from shared
      memory.

    Units that replay through the reference path (or ``pp``) carry their
    records and no key.  Returns ``(phases, NodeResult.to_dict())`` —
    the dict form is the single transport format for serial, parallel,
    and cached results.
    """
    records, config, mechanism, stream_key = args
    if compiled is None and stream_key is not None:
        compiled = _WORKER_STREAMS.get(stream_key)
        if compiled is None:
            raise RuntimeError(
                "stream %s not attached in this worker (pool initializer "
                "ran with a stale manifest?)" % (stream_key,))
    phases = dict.fromkeys(PHASES, 0.0)
    start = time.perf_counter()
    simulate = resolve(mechanism).simulate
    if compiled is not None:
        result = simulate(records, config, compiled=compiled)
    else:
        result = simulate(records, config)
    phases["replay_s"] = time.perf_counter() - start
    start = time.perf_counter()
    node_dict = result.to_dict()
    phases["report_s"] = time.perf_counter() - start
    return phases, node_dict


class SweepRunner:
    """Execute sweep cells — optionally in parallel — with caching.

    Parameters
    ----------
    workers:
        Worker processes.  1 (the default) runs every unit serially in
        the calling process; parallel and serial runs produce identical
        results, which the determinism tests diff directly.
    cache_dir:
        Directory for the on-disk result cache, or None to disable
        caching entirely.
    mp_context:
        ``multiprocessing`` start method ("fork", "spawn", ...); None
        uses the platform default.
    trace_dir:
        Directory to dump one JSONL event stream per traceable cell
        (``repro.obs`` events), or None (the default) for no tracing.
        Traced cells replay through the event-emitting reference engine,
        serially and uncached — the trace is the point, and a cache hit
        or out-of-order parallel replay would lose or scramble it.
    analytic:
        Enable the analytic axis-solver tier (the default).  False
        forces every cell through per-cell replay — the differential
        tests and benchmarks use this as the comparison baseline.
    """

    def __init__(self, workers=1, cache_dir=None, mp_context=None,
                 trace_dir=None, analytic=True):
        if workers < 1:
            raise ConfigError("workers must be at least 1, got %r"
                              % (workers,))
        self.workers = workers
        self.analytic = analytic
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.metrics = SweepMetrics(workers)
        self.trace_dir = trace_dir
        #: Manifest of the most recent batch's stream store — block
        #: names whose shared memory is already unlinked once the batch
        #: returns (introspection and leak tests).
        self.last_stream_manifest = {}
        self._trace_names = set()
        self._mp_context = mp_context
        self._pool = None
        self._pool_manifest = {}
        self._store = None

    # -- lifecycle ----------------------------------------------------------

    def close(self):
        """Shut the worker pool down, unlink any stream blocks
        (idempotent — batches normally unlink their own store)."""
        if self._store is not None:
            self._store.close()
            self._store = None
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_manifest = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _pool_handle(self, manifest):
        """The worker pool, rebuilt whenever the stream manifest changes.

        The manifest rides in the pool initializer (workers attach at
        startup, before any unit runs), so a batch that publishes new
        blocks needs fresh workers; manifest-less batches keep reusing
        the previous pool.
        """
        if self._pool is not None and manifest != self._pool_manifest:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._pool is None:
            context = get_context(self._mp_context)
            self._pool = context.Pool(processes=self.workers,
                                      initializer=_worker_init,
                                      initargs=(manifest,))
            self._pool_manifest = manifest
        return self._pool

    # -- tracing ------------------------------------------------------------

    def _open_cell_tracer(self, cell):
        """A fresh :class:`JsonlTracer` for one traceable cell, or None.

        Cells that already carry their own enabled tracer keep it (the
        caller owns that one); non-traceable mechanisms (``pp`` — the
        pool-of-pins model predates the event stream) are skipped.  File
        names are slugified cell labels, suffixed on collision so a
        sweep with repeated labels still gets one file per cell.
        """
        if self.trace_dir is None or cell.config.traced:
            return None
        mech = mech_registry.lookup(cell.mechanism)
        if mech is None or not mech.traceable:
            return None
        slug = re.sub(r"[^A-Za-z0-9._-]+", "-", str(cell.label)).strip("-")
        base = "%s.%s" % (slug or "cell", cell.mechanism)
        name = base + ".jsonl"
        serial = 1
        while name in self._trace_names:
            serial += 1
            name = "%s.%d.jsonl" % (base, serial)
        self._trace_names.add(name)
        os.makedirs(self.trace_dir, exist_ok=True)
        return JsonlTracer(os.path.join(self.trace_dir, name))

    # -- execution ----------------------------------------------------------

    def run(self, traces, config, mechanism=None, label=None):
        """Replay one cell; returns its :class:`ClusterResult`."""
        return self.run_cells(
            [SweepCell(label, traces, config, mechanism)])[0]

    def run_cells(self, cells):
        """Replay many cells; returns their results in submission order.

        ``cells`` holds :class:`SweepCell` objects or plain
        ``(label, traces, config, mechanism)`` tuples.  Cached cells are
        answered from disk; the remaining node replays are flattened into
        one work-unit list and executed serially (``workers=1``) or over
        the pool — either way with deterministic, submission-ordered
        results.

        Batch pipeline: fingerprint every distinct trace once (the same
        hash keys the result cache and the compile memo), compile each
        distinct fingerprint once, and — when the pool is used — publish
        the compiled streams to a shared-memory store whose blocks are
        unlinked before this method returns, on success and on worker
        failure alike.
        """
        cells = [c if isinstance(c, SweepCell) else SweepCell(*c)
                 for c in cells]
        batch_start = time.perf_counter()
        results = [None] * len(cells)
        keys = [None] * len(cells)
        configs = [cell.config for cell in cells]   # effective per cell
        owned_tracers = []
        cell_metrics = []
        pending = []
        fingerprint_memo = {}       # id(records) -> content fingerprint

        def fingerprint(records):
            # Keyed by source identity (stable: the cells keep every
            # trace source — record list or StreamingNodeTrace — alive
            # for the whole batch) so each distinct trace is hashed once
            # per batch no matter how many cells share it.
            memo_key = id(records)
            digest = fingerprint_memo.get(memo_key)
            if digest is None:
                digest = fingerprint_memo[memo_key] = \
                    trace_fingerprint(records)
            return digest

        try:
            for index, cell in enumerate(cells):
                metrics = CellMetrics(cell.label, cell.mechanism,
                                      cell.config, len(cell.traces))
                cell_metrics.append(metrics)
                tracer = self._open_cell_tracer(cell)
                if tracer is not None:
                    owned_tracers.append(tracer)
                    configs[index] = cell.config.replace(tracer=tracer)
                    metrics.trace_path = tracer.path
                # A traced cell must actually replay: a cache hit would
                # return the numbers but lose the event stream.
                if self.cache is not None and not configs[index].traced:
                    start = time.perf_counter()
                    keys[index] = cell_key(
                        cell.traces, cell.config, cell.mechanism,
                        fingerprints={node: fingerprint(cell.traces[node])
                                      for node in cell.traces})
                    cached = self.cache.load(keys[index])
                    if cached is not None:
                        results[index] = cached
                        metrics.cache_hit = True
                        metrics.wall_time_s = time.perf_counter() - start
                        metrics.lookups = cached.stats.lookups
                        metrics.stats = cached.stats.snapshot()
                        continue
                pending.append(index)

            # The axis-solver tier: groups of cells differing only along
            # one analytic-eligible axis are lifted out of ``pending``
            # and answered by one pass per node.
            axes = []
            if self.analytic:
                axes, pending = plan_axes(cells, pending, configs,
                                          fingerprint)

            units = []                  # (kind, cell index | axis pos, node)
            unit_args = []              # tagged; stream key always last
            for apos, axis in enumerate(axes):
                cell = cells[axis.indices[0]]
                for node in sorted(cell.traces):
                    records = cell.traces[node]
                    units.append(("analytic", apos, node))
                    unit_args.append(("analytic", records, axis.spec,
                                      fingerprint(records)))
            for index in pending:
                cell = cells[index]
                eligible = _streams_eligible(configs[index], cell.mechanism)
                cell_metrics[index].kernel = _kernel_eligible(
                    configs[index], cell.mechanism)
                for node in sorted(cell.traces):
                    records = cell.traces[node]
                    units.append(("replay", index, node))
                    unit_args.append((
                        "replay", records, configs[index], cell.mechanism,
                        fingerprint(records) if eligible else None))

            # Compile each distinct trace exactly once per batch; charge
            # the pass (time and count) to the first cell that needed it
            # (an axis charges its first member cell).
            compiled_by_key = {}
            key_owner = {}              # stream key -> triggering cell
            for (kind, target, _node), args in zip(units, unit_args):
                stream_key = args[-1]
                if stream_key is None or stream_key in compiled_by_key:
                    continue
                start = time.perf_counter()
                compiled_by_key[stream_key] = compile_streams(args[1])
                elapsed = time.perf_counter() - start
                index = target if kind == "replay" else \
                    axes[target].indices[0]
                key_owner[stream_key] = index
                metrics = cell_metrics[index]
                metrics.phases["compile_s"] += elapsed
                metrics.wall_time_s += elapsed
                metrics.compile_count += 1

            if not unit_args:
                outcomes = []
            elif self.workers == 1 or len(unit_args) == 1:
                outcomes = [_run_unit(args, compiled_by_key.get(args[-1]))
                            for args in unit_args]
            else:
                outcomes = self._run_pooled(unit_args, compiled_by_key,
                                            key_owner, cell_metrics)

            node_dicts = {index: [] for index in pending}
            axis_payloads = [[] for _ in axes]
            for (kind, target, _node), (phases, payload) in zip(units,
                                                                outcomes):
                if kind == "replay":
                    node_dicts[target].append(payload)
                    targets = (target,)
                else:
                    # One solve answers every cell of the axis: charge
                    # each member its equal share (same trace, same
                    # lookups per cell), so no solved cell reports a
                    # zero wall time and summing members recovers the
                    # true axis cost.
                    axis_payloads[target].append(payload)
                    targets = axes[target].indices
                share = 1.0 / len(targets)
                total = sum(phases.values())
                for index in targets:
                    metrics = cell_metrics[index]
                    for phase in PHASES:
                        metrics.phases[phase] += phases[phase] * share
                    metrics.wall_time_s += total * share

            def finish(index, result):
                results[index] = result
                metrics = cell_metrics[index]
                metrics.lookups = result.stats.lookups
                metrics.stats = result.stats.snapshot()
                if self.cache is not None and keys[index] is not None:
                    self.cache.store(keys[index], result, meta={
                        "label": str(cells[index].label),
                        "mechanism": cells[index].mechanism,
                        "config": cells[index].config.describe(),
                        "wall_time_s": metrics.wall_time_s,
                    })

            for apos, axis in enumerate(axes):
                # One payload per node (node-sorted, like replay units);
                # each holds one node dict per axis cell.
                per_node = axis_payloads[apos]
                axis_id = self.metrics.analytic_axes + apos
                for cpos, index in enumerate(axis.indices):
                    cell_metrics[index].analytic = True
                    cell_metrics[index].axis_id = axis_id
                    finish(index, ClusterResult.from_dict(
                        {"nodes": [payload[cpos]
                                   for payload in per_node]}))
            self.metrics.analytic_axes += len(axes)

            for index in pending:
                finish(index, ClusterResult.from_dict(
                    {"nodes": node_dicts[index]}))
        finally:
            if self._store is not None:
                self._store.close()
                self._store = None
            for tracer in owned_tracers:
                tracer.close()

        for metrics in cell_metrics:
            self.metrics.record(metrics)
        if self.cache is not None:
            self.metrics.cache_corrupt = self.cache.corrupt
        self.metrics.elapsed_s += time.perf_counter() - batch_start
        return results

    def _run_pooled(self, unit_args, compiled_by_key, key_owner,
                    cell_metrics):
        """Fan the batch's units over the pool; submission-order results.

        Stream-eligible units (replay and analytic alike) travel with
        ``records=None`` plus their stream key against the shared store
        — the records never cross the process boundary.  Traced units
        hold live tracers
        (unpicklable, and their events must land in node order), so they
        run in this process in submission order; everything else is
        dispatched largest-trace-first with ``chunksize=1`` so one huge
        node trace starts immediately instead of serializing the tail
        behind a straggler.
        """
        outcomes = [None] * len(unit_args)
        pooled = [i for i, args in enumerate(unit_args)
                  if args[0] == "analytic" or not args[2].traced]
        if pooled:
            manifest = {}
            if compiled_by_key:
                self._store = SharedStreamStore()
                for stream_key in list(compiled_by_key):
                    published = self._store.publish(
                        stream_key, compiled_by_key[stream_key])
                    cell_metrics[key_owner[stream_key]].ipc_bytes += \
                        published
                    # Swap the memo entry for a zero-copy view over the
                    # published block and drop the parent's own arrays:
                    # the batch then holds ONE copy of each compiled
                    # trace (in shared memory), not heap + block.
                    compiled_by_key[stream_key] = \
                        self._store.view(stream_key)
                manifest = self._store.manifest()
            self.last_stream_manifest = dict(manifest)

            def unit_pages(i):
                stream_key = unit_args[i][-1]
                if stream_key is not None:
                    return compiled_by_key[stream_key].total_pages
                return count_lookups(unit_args[i][1])

            order = sorted(pooled, key=lambda i: (-unit_pages(i), i))
            shipped = []
            for i in order:
                args = unit_args[i]
                if args[-1] is not None:    # streams ride shared memory
                    args = args[:1] + (None,) + args[2:]
                shipped.append(args)
            pool = self._pool_handle(manifest)
            for i, outcome in zip(order,
                                  pool.map(_run_unit, shipped, 1)):
                outcomes[i] = outcome
        for i, args in enumerate(unit_args):
            if outcomes[i] is None:
                outcomes[i] = _run_unit(args,
                                        compiled_by_key.get(args[-1]))
        return outcomes


# ---------------------------------------------------------------------------
# The process-wide default (what legacy call sites fall back to)
# ---------------------------------------------------------------------------

_DEFAULT_RUNNER = None


def default_runner():
    """A shared runner for call sites that pass none.

    Serial and cache-less unless ``REPRO_WORKERS`` asks for parallelism,
    so existing code keeps its exact behaviour by default.
    """
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = SweepRunner(workers=workers_from_env())
    return _DEFAULT_RUNNER
