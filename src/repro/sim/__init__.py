"""Trace-driven analysis harness: simulators for every mechanism,
parameter sweeps, one function per paper table/figure
(:mod:`repro.sim.experiments`), beyond-the-paper ablations
(:mod:`repro.sim.ablation`), and automated paper-vs-measured comparison
(:mod:`repro.sim.compare`)."""

from repro.sim import ablation, compare, experiments, report  # noqa: F401

from repro.sim.config import SimConfig
from repro.sim.intr_simulator import simulate_app_intr, simulate_node_intr
from repro.sim.pp_simulator import simulate_app_pp, simulate_node_pp
from repro.sim.runner import (
    ResultCache,
    SweepCell,
    SweepMetrics,
    SweepRunner,
    cell_key,
    default_cache_dir,
    default_runner,
    trace_fingerprint,
    workers_from_env,
)
from repro.sim.stream_store import SharedStreamStore
from repro.sim.simulator import (
    ClusterResult,
    NodeResult,
    simulate_app,
    simulate_node,
)
from repro.sim.sweep import (
    generate_traces,
    run_on_traces,
    sweep_associativity,
    sweep_cache_sizes,
    sweep_policies,
    sweep_prefetch,
)

__all__ = [
    "ClusterResult",
    "NodeResult",
    "ResultCache",
    "SharedStreamStore",
    "SimConfig",
    "SweepCell",
    "SweepMetrics",
    "SweepRunner",
    "cell_key",
    "default_cache_dir",
    "default_runner",
    "trace_fingerprint",
    "workers_from_env",
    "generate_traces",
    "run_on_traces",
    "simulate_app",
    "simulate_app_intr",
    "simulate_app_pp",
    "simulate_node",
    "simulate_node_intr",
    "simulate_node_pp",
    "sweep_associativity",
    "sweep_cache_sizes",
    "sweep_policies",
    "sweep_prefetch",
]
