"""Zero-copy distribution of compiled page streams to sweep workers.

The sweep engine replays the *same* node traces under dozens of
configurations.  Before this layer existed, every parallel work unit
pickled its full record list through the pool and recompiled the page
streams in the worker — per cell, not per trace.  Mirroring the paper's
own move (one Shared UTLB-Cache instead of per-process copies), the
store puts each distinct compiled trace into one
``multiprocessing.shared_memory`` block and hands workers a key; the
worker attaches read-only and rebuilds :class:`CompiledStreams` as
``memoryview`` casts over the mapping — zero copies of the page arrays
on either side of the fork/spawn boundary.

Block layout (all little-endian, offsets 8-byte aligned)::

    [u64 header length][JSON header][pad][buffer 0][pad][buffer 1]...

The JSON header is exactly :meth:`CompiledStreams.to_buffers` metadata,
so the store adds transport, not format: an attach round-trips
byte-identical to in-process compilation.

Lifecycle: the parent :meth:`publish`\\ es per batch and must
:meth:`close` (unlink) every block when the batch ends — on success *and*
on worker failure.  Attached blocks stay valid after unlink (POSIX
semantics); a worker's mappings die with the worker process.  Attaching
deliberately sidesteps the resource tracker (bpo-38119): only the
creating process owns unlink, otherwise every worker exit would try to
destroy — or loudly fail to destroy — blocks it never owned.
"""

import json
import struct
import sys
from multiprocessing import shared_memory

try:
    from multiprocessing import resource_tracker
except ImportError:                                   # pragma: no cover
    resource_tracker = None

from repro.traces.compile import CompiledStreams

_HEADER_LEN = struct.Struct("<Q")
_ALIGNMENT = 8


def _aligned(nbytes):
    return (nbytes + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


def _attach_block(name):
    """Attach to an existing block without adopting ownership of it.

    Before Python 3.13 (which grew ``track=False``), merely attaching
    registers the block with the process's resource tracker, so a worker
    exiting would unlink — or warn about — a block the parent still owns.
    Unregistering right after attach restores create-owns-unlink.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    if resource_tracker is None:                      # pragma: no cover
        return shared_memory.SharedMemory(name=name)
    # Suppress (not undo) the registration: processes forked from one
    # parent share a single tracker whose name cache is a set, so a
    # register/unregister pair from each of N workers underflows it.
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _parse_block(buf):
    """Rebuild ``(CompiledStreams, slice views)`` over one block's buffer.

    The single decode path for both sides of the transport: workers use
    it through :class:`AttachedStreams`, the owning parent through
    :meth:`SharedStreamStore.view`.  The returned slice views (and the
    compiled object's arrays, which are casts of them) alias ``buf`` —
    every one must be released before the block can be unmapped.
    """
    (meta_len,) = _HEADER_LEN.unpack_from(buf, 0)
    meta = json.loads(
        bytes(buf[_HEADER_LEN.size:_HEADER_LEN.size + meta_len]))
    position = _aligned(_HEADER_LEN.size + meta_len)
    views = []
    for _code, nbytes in meta["buffers"]:
        views.append(buf[position:position + nbytes])
        position += _aligned(nbytes)
    return CompiledStreams.from_buffers(meta, views), views


def _release_compiled(compiled, views):
    """Release every memoryview export of one :func:`_parse_block` pair."""
    if compiled is not None:
        for view in (compiled.index_stream, compiled.page_stream,
                     *compiled.streams.values()):
            view.release()
    for view in views:
        view.release()


class AttachedStreams:
    """One attached block: a zero-copy :class:`CompiledStreams` view.

    ``compiled`` aliases the shared mapping, so :meth:`close` first
    releases every exported memoryview (Python refuses to unmap a block
    with live exports) and leaves ``compiled`` unusable.  Workers never
    bother closing — their mappings vanish with the process — but tests
    and short-lived parent-side attaches must.
    """

    __slots__ = ("key", "compiled", "_block", "_views")

    def __init__(self, key, name):
        self.key = key
        self._block = _attach_block(name)
        self.compiled, self._views = _parse_block(self._block.buf)

    def close(self):
        """Release every view and detach (idempotent)."""
        compiled, self.compiled = self.compiled, None
        views, self._views = self._views, []
        _release_compiled(compiled, views)
        if self._block is not None:
            self._block.close()
            self._block = None


class SharedStreamStore:
    """Per-batch publisher of compiled streams in shared memory.

    The parent publishes each distinct compiled trace once, keyed by its
    content fingerprint; :meth:`manifest` (``{key: block name}``) travels
    to the pool initializer, and work units then carry only the key.
    ``ipc_bytes`` totals the bytes written into blocks — the data that a
    pickle-per-unit transport would have shipped once per *cell*.
    """

    def __init__(self):
        self._blocks = {}                   # key -> SharedMemory (owned)
        self._view_exports = []             # (compiled, views) from view()
        self.ipc_bytes = 0

    def __len__(self):
        return len(self._blocks)

    def __contains__(self, key):
        return key in self._blocks

    def publish(self, key, compiled):
        """Write one compiled trace into a fresh block; returns its size.

        Publishing an already-present key is a no-op returning 0 — the
        batch compiles (and therefore publishes) each fingerprint once.
        """
        if key in self._blocks:
            return 0
        meta, buffers = compiled.to_buffers()
        header = json.dumps(meta, sort_keys=True,
                            separators=(",", ":")).encode("ascii")
        position = _aligned(_HEADER_LEN.size + len(header))
        total = position + sum(_aligned(view.nbytes) for view in buffers)
        block = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = block.buf
        _HEADER_LEN.pack_into(buf, 0, len(header))
        buf[_HEADER_LEN.size:_HEADER_LEN.size + len(header)] = header
        for view in buffers:
            buf[position:position + view.nbytes] = view
            position += _aligned(view.nbytes)
        self._blocks[key] = block
        self.ipc_bytes += total
        return total

    def manifest(self):
        """``{stream key: shared-memory block name}`` for the initializer."""
        return {key: block.name for key, block in self._blocks.items()}

    def attach(self, key, name=None):
        """A read-only :class:`AttachedStreams` for one published key.

        ``name`` lets a foreign process (which has only the manifest)
        attach; the owning process can omit it.
        """
        if name is None:
            name = self._blocks[key].name
        return AttachedStreams(key, name)

    def view(self, key):
        """A zero-copy :class:`CompiledStreams` over one *owned* block.

        The parent-side memory-bound move: after publishing, the runner
        swaps its compile-memo entry for this view and drops the
        original arrays, so each distinct trace exists exactly once —
        in the block — instead of once in the parent's heap plus once
        in shared memory.  Views alias the block's mapping; the store
        tracks and releases them in :meth:`close` (a block with live
        memoryview exports refuses to unmap), after which they are
        unusable.
        """
        compiled, views = _parse_block(self._blocks[key].buf)
        self._view_exports.append((compiled, views))
        return compiled

    def close(self):
        """Unmap and unlink every owned block (idempotent).

        Safe to call with workers still attached: unlink removes the
        name, the workers' existing mappings stay valid until they exit.
        Any parent-side :meth:`view` results are released first and die
        with the store.
        """
        exports, self._view_exports = self._view_exports, []
        for compiled, views in exports:
            _release_compiled(compiled, views)
        blocks, self._blocks = self._blocks, {}
        for block in blocks.values():
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:                 # pragma: no cover
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
