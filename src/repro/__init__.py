"""repro: a reproduction of "UTLB: A Mechanism for Address Translation on
Network Interfaces" (ASPLOS 1998).

The package implements the paper's contribution and every substrate it
depends on:

* :mod:`repro.core` — the UTLB mechanisms (Hierarchical-UTLB, per-process
  UTLB, the Shared UTLB-Cache, pin policies, the calibrated cost model)
  and the interrupt-based baseline;
* :mod:`repro.memsim` — host memory and OS (frames, address spaces, page
  pinning, syscalls, interrupts);
* :mod:`repro.nic` — the network interface (SRAM, DMA, command queues,
  MCP firmware);
* :mod:`repro.network` — the Myrinet-like fabric with reliable delivery;
* :mod:`repro.vmmc` — the VMMC communication model (export/import, remote
  store/fetch, transfer redirection) running on all of the above;
* :mod:`repro.cachesim` — generic cache simulation plus 3C miss
  classification;
* :mod:`repro.traces` — trace records/IO/merging and the synthetic
  SPLASH-2-like workload generators;
* :mod:`repro.sim` — the trace-driven analysis harness and one function
  per paper table/figure (:mod:`repro.sim.experiments`).

Quick start::

    from repro.vmmc import Cluster, remote_store

    cluster = Cluster(num_nodes=2)
    sender = cluster.node(0).create_process()
    receiver = cluster.node(1).create_process()
    export_id = receiver.export(0x40000000, 8192)
    handle = sender.import_buffer(1, export_id)
    sender.write_memory(0x10000000, b"hello, remote memory")
    remote_store(cluster, sender, 0x10000000, 20, handle)
    assert receiver.read_memory(0x40000000, 20) == b"hello, remote memory"
"""

__version__ = "1.0.0"

from repro import params
from repro.errors import ReproError

__all__ = ["params", "ReproError", "__version__"]
