"""Exception hierarchy for the UTLB reproduction.

All library errors derive from :class:`ReproError` so callers can catch the
whole family with one clause.  Subsystems raise the most specific subclass.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AddressError(ReproError, ValueError):
    """A virtual or physical address is malformed or out of range."""


class ProtectionError(ReproError):
    """An operation would cross a protection boundary.

    Examples: a user process touching another process's translation table,
    importing a buffer that was never exported, or a NIC request naming a
    process tag that is not registered.
    """


class PinningError(ReproError):
    """Page pinning or unpinning failed.

    Raised when unpinning a page that is not pinned, when the OS-wide
    physical-memory pool is exhausted, or when a per-process pinning limit
    cannot be satisfied even after eviction.
    """


class TranslationError(ReproError):
    """A virtual page has no valid translation where one was required."""


class CapacityError(ReproError):
    """A fixed-capacity structure (per-process UTLB table, NIC SRAM,
    command queue) is full and cannot accept another entry."""


class NicError(ReproError):
    """The network-interface model rejected an operation."""


class NetworkError(ReproError):
    """The network fabric failed to deliver a packet (after retries)."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class ConfigError(ReproError, ValueError):
    """A simulation or experiment configuration is invalid."""
