"""Three-C miss classification (Hill [23]) for any key-based cache.

Figure 7 of the paper breaks NIC translation-cache misses into compulsory,
capacity, and conflict components.  The standard definitions:

* **compulsory** — the first reference ever made to the key; no cache of
  any size or organisation could have hit.
* **capacity** — a non-compulsory miss that a *fully associative* LRU cache
  with the same total capacity would also have missed.
* **conflict** — everything else: the fully associative cache would have
  hit, so the miss is an artifact of the (limited) set mapping.

The classifier runs a fully-associative LRU shadow cache in lockstep with
the real cache.  The shadow sees every access (hit or miss) and every
invalidation, so its contents are exactly "what a fully associative cache
with this capacity would hold".
"""

from collections import OrderedDict

COMPULSORY = "compulsory"
CAPACITY = "capacity"
CONFLICT = "conflict"

MISS_CLASSES = (COMPULSORY, CAPACITY, CONFLICT)


class MissBreakdown:
    """Counts of each miss class plus total accesses."""

    __slots__ = ("accesses", "compulsory", "capacity", "conflict")

    def __init__(self):
        self.accesses = 0
        self.compulsory = 0
        self.capacity = 0
        self.conflict = 0

    @property
    def total_misses(self):
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self):
        return self.total_misses / self.accesses if self.accesses else 0.0

    def rates(self):
        """Per-class miss rates as a dict (fractions of all accesses)."""
        if not self.accesses:
            return {COMPULSORY: 0.0, CAPACITY: 0.0, CONFLICT: 0.0}
        return {
            COMPULSORY: self.compulsory / self.accesses,
            CAPACITY: self.capacity / self.accesses,
            CONFLICT: self.conflict / self.accesses,
        }

    def snapshot(self):
        out = {"accesses": self.accesses, "misses": self.total_misses}
        out.update({
            COMPULSORY: self.compulsory,
            CAPACITY: self.capacity,
            CONFLICT: self.conflict,
        })
        return out

    # -- combination and serialization ----------------------------------------

    def merge(self, other):
        """Accumulate another breakdown into this one (in place)."""
        self.accesses += other.accesses
        self.compulsory += other.compulsory
        self.capacity += other.capacity
        self.conflict += other.conflict
        return self

    @classmethod
    def merged(cls, breakdowns):
        """A new breakdown summing every element of ``breakdowns``."""
        total = cls()
        for breakdown in breakdowns:
            total.merge(breakdown)
        return total

    def to_dict(self):
        """All four counters as a JSON-safe dict (lossless)."""
        return {
            "accesses": self.accesses,
            COMPULSORY: self.compulsory,
            CAPACITY: self.capacity,
            CONFLICT: self.conflict,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a breakdown from :meth:`to_dict` output."""
        breakdown = cls()
        breakdown.accesses = int(data.get("accesses", 0))
        breakdown.compulsory = int(data.get(COMPULSORY, 0))
        breakdown.capacity = int(data.get(CAPACITY, 0))
        breakdown.conflict = int(data.get(CONFLICT, 0))
        return breakdown


class ThreeCClassifier:
    """Classify each miss of a real cache into compulsory/capacity/conflict.

    Usage: on every access to the real cache, call :meth:`observe_access`
    with the key and whether the real cache hit.  On invalidations of the
    real cache, call :meth:`observe_invalidate` so the shadow tracks it.
    """

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("shadow capacity must be positive")
        self.capacity = capacity
        self._shadow = OrderedDict()     # fully associative LRU shadow
        self._ever_seen = set()
        self.breakdown = MissBreakdown()

    def observe_access(self, key, real_hit):
        """Record one access; returns the miss class or None on a hit."""
        self.breakdown.accesses += 1
        shadow_hit = key in self._shadow
        if shadow_hit:
            self._shadow.move_to_end(key)
        else:
            if len(self._shadow) >= self.capacity:
                self._shadow.popitem(last=False)
            self._shadow[key] = True

        first_reference = key not in self._ever_seen
        self._ever_seen.add(key)

        if real_hit:
            return None
        if first_reference:
            self.breakdown.compulsory += 1
            return COMPULSORY
        if not shadow_hit:
            self.breakdown.capacity += 1
            return CAPACITY
        self.breakdown.conflict += 1
        return CONFLICT

    def observe_fill(self, key):
        """Record a fill that was not driven by an access at this key.

        Prefetched entries enter both the real cache and the shadow; a key
        brought in by prefetch no longer causes a *compulsory* miss later
        because the reference stream effectively saw it.  (Figure 7 runs
        without prefetch, but the classifier stays correct when prefetch is
        enabled.)
        """
        if key in self._shadow:
            self._shadow.move_to_end(key)
            return
        if len(self._shadow) >= self.capacity:
            self._shadow.popitem(last=False)
        self._shadow[key] = True

    def observe_invalidate(self, key):
        """Mirror an invalidation of the real cache into the shadow."""
        self._shadow.pop(key, None)

    def reset_counts(self):
        """Zero the breakdown without forgetting reference history."""
        self.breakdown = MissBreakdown()
