"""Within-set replacement policies for set-associative caches.

A policy only orders the keys inside one cache set.  Each policy is a small
class with the same three-method protocol so caches can swap them freely:

* ``touch(set_state, key)``  — note a hit on ``key``
* ``insert(set_state, key)`` — note a fill of ``key``
* ``victim(set_state)``      — pick the key to evict (set is full)

``set_state`` is the per-set insertion-ordered dict the cache maintains;
policies mutate only its ordering (pop + reinsert moves a key to the
most-recent end), never its contents.
"""

import random

from repro.errors import ConfigError


class LruPolicy:
    """Least recently used (the default for the NIC translation cache)."""

    name = "lru"

    def touch(self, set_state, key):
        set_state[key] = set_state.pop(key)

    def insert(self, set_state, key):
        set_state[key] = set_state.pop(key)

    def victim(self, set_state):
        return next(iter(set_state))


class FifoPolicy:
    """First in, first out — insertion order only, hits do not reorder."""

    name = "fifo"

    def touch(self, set_state, key):
        pass

    def insert(self, set_state, key):
        set_state[key] = set_state.pop(key)

    def victim(self, set_state):
        return next(iter(set_state))


class RandomPolicy:
    """Uniform random victim (deterministic given the seed)."""

    name = "random"

    def __init__(self, seed=0):
        self._rng = random.Random(seed)

    def touch(self, set_state, key):
        pass

    def insert(self, set_state, key):
        pass

    def victim(self, set_state):
        keys = list(set_state)
        return keys[self._rng.randrange(len(keys))]


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name, seed=0):
    """Instantiate a replacement policy by name ('lru', 'fifo', 'random')."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            "unknown replacement policy %r (choose from %s)"
            % (name, sorted(_POLICIES)))
    if cls is RandomPolicy:
        return cls(seed=seed)
    return cls()
