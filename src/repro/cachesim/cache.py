"""A generic set-associative cache with pluggable indexing.

This is the substrate under the Shared UTLB-Cache: a fixed number of
entries organised as ``num_sets × associativity``, a pluggable index
function (which is how the paper's *index offsetting* hash is expressed),
and a within-set replacement policy.

Keys are arbitrary hashables; the UTLB layers use ``(pid, vpage)``.  The
index function receives the key and must return an int; it is reduced
modulo ``num_sets``.
"""

from repro.errors import ConfigError
from repro.cachesim.replacement import make_policy


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("accesses", "hits", "misses", "evictions", "invalidations",
                 "fills")

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.fills = 0

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self):
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self):
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "fills": self.fills,
            "miss_rate": self.miss_rate,
        }


class SetAssociativeCache:
    """Fixed-capacity set-associative cache of key -> payload entries.

    Parameters
    ----------
    num_entries:
        Total entries (must be divisible by ``associativity``).
    associativity:
        Ways per set; ``num_entries`` ways makes it fully associative.
    index_fn:
        ``index_fn(key) -> int``; defaults to ``hash``.  The Shared
        UTLB-Cache passes the virtual page number plus a per-process
        offset here (Section 6.3's offsetting technique).
    replacement:
        'lru' (default), 'fifo', or 'random'.
    """

    def __init__(self, num_entries, associativity=1, index_fn=None,
                 replacement="lru", seed=0):
        if num_entries <= 0:
            raise ConfigError("cache needs at least one entry")
        if associativity <= 0:
            raise ConfigError("associativity must be positive")
        if num_entries % associativity:
            raise ConfigError(
                "num_entries (%d) not divisible by associativity (%d)"
                % (num_entries, associativity))
        self.num_entries = num_entries
        self.associativity = associativity
        self.num_sets = num_entries // associativity
        self._index_fn = index_fn if index_fn is not None else hash
        self._policy = make_policy(replacement, seed=seed)
        # Sets are created on first fill: sweeps build thousands of
        # caches whose footprints touch a fraction of their sets, so
        # eager allocation of num_sets dicts would dominate construction.
        # Plain dicts suffice — insertion-ordered since 3.7, and the
        # policies move keys with pop + reinsert.
        self._sets = {}                 # set index -> {key: payload}
        self.stats = CacheStats()

    # -- internals ----------------------------------------------------------

    def set_index(self, key):
        """The set an entry for ``key`` maps into."""
        return self._index_fn(key) % self.num_sets

    def _set_for(self, key):
        """The set holding ``key``'s entries, or None if never filled."""
        return self._sets.get(self._index_fn(key) % self.num_sets)

    # -- operations ----------------------------------------------------------

    def lookup(self, key):
        """Probe the cache.  Returns (hit, payload-or-None).

        Counts an access; on a hit the replacement policy is notified.
        """
        stats = self.stats
        stats.accesses += 1
        set_state = self._sets.get(self._index_fn(key) % self.num_sets)
        if set_state is not None and key in set_state:
            stats.hits += 1
            self._policy.touch(set_state, key)
            return True, set_state[key]
        stats.misses += 1
        return False, None

    def peek(self, key):
        """Probe without counting or reordering (for assertions/tests)."""
        set_state = self._set_for(key)
        if set_state is not None and key in set_state:
            return True, set_state[key]
        return False, None

    def insert(self, key, payload):
        """Fill ``key`` -> ``payload``; returns the evicted (key, payload)
        pair, or None when no eviction was needed.

        Inserting an existing key updates its payload in place (no
        eviction, but the policy sees an insert).
        """
        index = self._index_fn(key) % self.num_sets
        set_state = self._sets.get(index)
        if set_state is None:
            set_state = self._sets[index] = {}
        evicted = None
        if key in set_state:
            set_state[key] = payload
            self._policy.insert(set_state, key)
        else:
            if len(set_state) >= self.associativity:
                victim = self._policy.victim(set_state)
                evicted = (victim, set_state.pop(victim))
                self.stats.evictions += 1
            # A brand-new key lands at the most-recent end of the dict,
            # which is already the outcome of every policy's insert hook
            # (LRU/FIFO move-to-end, random no-op), so the hook is only
            # consulted for payload-update fills above.
            set_state[key] = payload
        self.stats.fills += 1
        return evicted

    def evict_one(self, index):
        """Evict the policy's victim from set ``index % num_sets``.

        An *external* eviction: capacity claimed by something other than
        a fill (the Victima-style data-cache pressure path).  Counts an
        eviction; returns the evicted ``(key, payload)`` pair, or None
        when the set holds no entries.
        """
        set_state = self._sets.get(index % self.num_sets)
        if not set_state:
            return None
        victim = self._policy.victim(set_state)
        evicted = (victim, set_state.pop(victim))
        self.stats.evictions += 1
        return evicted

    def invalidate(self, key):
        """Drop ``key`` if present; returns True when an entry was dropped."""
        set_state = self._set_for(key)
        if set_state is not None and key in set_state:
            del set_state[key]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_where(self, predicate):
        """Drop every entry whose (key, payload) satisfies ``predicate``.

        Used when a process exits or a page is unpinned and all of its
        translations must leave the NIC cache.  Returns the count dropped.
        """
        dropped = 0
        for set_state in self._sets.values():
            victims = [k for k, v in set_state.items() if predicate(k, v)]
            for key in victims:
                del set_state[key]
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def clear(self):
        self._sets.clear()

    # -- inspection ----------------------------------------------------------

    def __len__(self):
        return sum(len(s) for s in self._sets.values())

    def __contains__(self, key):
        set_state = self._set_for(key)
        return set_state is not None and key in set_state

    def items(self):
        """All (key, payload) pairs currently cached (arbitrary set order)."""
        for set_state in self._sets.values():
            for key, payload in set_state.items():
                yield key, payload

    def occupancy(self):
        """Fraction of entries in use."""
        return len(self) / self.num_entries
