"""Generic cache simulation substrate: set-associative caches, replacement
policies, and Hill 3C miss classification."""

from repro.cachesim.cache import CacheStats, SetAssociativeCache
from repro.cachesim.classify import (
    CAPACITY,
    COMPULSORY,
    CONFLICT,
    MISS_CLASSES,
    MissBreakdown,
    ThreeCClassifier,
)
from repro.cachesim.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "ThreeCClassifier",
    "MissBreakdown",
    "COMPULSORY",
    "CAPACITY",
    "CONFLICT",
    "MISS_CLASSES",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]
