"""Command post buffers: the user-process → NIC request path.

"The driver also allocates a special command post buffer from the Myrinet
SRAM and maps it into the application's address space.  The user-level
VMMC library posts communication requests to the command buffer.  The
address of a command buffer is used to identify the user process.  The MCP
polls user requests from each command buffer and processes them in the
order that they are received." (Section 4.2)

Commands are small structured records; each queue is a bounded FIFO
backed by an SRAM region so the footprint is accounted for.
"""

from collections import deque

from repro.errors import CapacityError, NicError

#: Bytes reserved in SRAM per command slot (a descriptor, not the data).
COMMAND_SLOT_BYTES = 32


class Command:
    """Base class for NIC commands; subclasses add operation fields."""

    kind = "nop"

    def __init__(self, pid):
        self.pid = pid
        self.sequence = None        # stamped by the queue at post time

    def __repr__(self):
        fields = {k: v for k, v in vars(self).items() if k != "pid"}
        return "%s(pid=%r, %s)" % (type(self).__name__, self.pid, fields)


class SendCommand(Command):
    """Remote store: transfer a local buffer into a remote receive buffer."""

    kind = "send"

    def __init__(self, pid, local_vaddr, nbytes, import_handle, remote_offset):
        super().__init__(pid)
        self.local_vaddr = local_vaddr
        self.nbytes = nbytes
        self.import_handle = import_handle
        self.remote_offset = remote_offset


class FetchCommand(Command):
    """Remote fetch: pull data from a remote receive buffer (VMMC-2)."""

    kind = "fetch"

    def __init__(self, pid, local_vaddr, nbytes, import_handle, remote_offset):
        super().__init__(pid)
        self.local_vaddr = local_vaddr
        self.nbytes = nbytes
        self.import_handle = import_handle
        self.remote_offset = remote_offset


class CommandQueue:
    """One process's command post buffer on the NIC."""

    def __init__(self, pid, sram, depth=64):
        if depth <= 0:
            raise NicError("queue depth must be positive")
        self.pid = pid
        self.depth = depth
        self.region = sram.allocate("cmdq:%r" % (pid,),
                                    depth * COMMAND_SLOT_BYTES)
        self._fifo = deque()
        self._next_sequence = 0
        self.posted = 0
        self.processed = 0

    def post(self, command):
        """User-level post; raises :class:`CapacityError` when full."""
        if command.pid != self.pid:
            raise NicError(
                "command for pid %r posted to queue of pid %r"
                % (command.pid, self.pid))
        if len(self._fifo) >= self.depth:
            raise CapacityError(
                "command queue of pid %r is full (%d entries)"
                % (self.pid, self.depth))
        command.sequence = self._next_sequence
        self._next_sequence += 1
        self._fifo.append(command)
        self.posted += 1
        return command.sequence

    def poll(self):
        """MCP-side: pop the oldest command, or None when empty."""
        if not self._fifo:
            return None
        self.processed += 1
        return self._fifo.popleft()

    def __len__(self):
        return len(self._fifo)

    @property
    def pending(self):
        return len(self._fifo)
