"""The NIC DMA engine and I/O-bus timing model.

All data crossing the I/O bus — user data being sent or received, and
translation entries being fetched into the Shared UTLB-Cache — moves
through this engine.  It transfers bytes between host physical frames and
NIC SRAM, enforces the single-page DMA limit the firmware imposes, and
accounts both bytes and simulated time.

Timing: a transfer costs ``setup + bytes / bandwidth``.  The defaults are
back-derived from the paper: Table 2's entry-fetch DMA costs are dominated
by ~1.5 µs of setup, and Myrinet moves 160 MB/s on the link with the PCI
bus in the same range.
"""

from repro import params
from repro.errors import NicError


class DmaStats:
    __slots__ = ("transfers", "bytes_host_to_nic", "bytes_nic_to_host",
                 "time_us")

    def __init__(self):
        self.transfers = 0
        self.bytes_host_to_nic = 0
        self.bytes_nic_to_host = 0
        self.time_us = 0.0

    @property
    def total_bytes(self):
        return self.bytes_host_to_nic + self.bytes_nic_to_host


class DmaEngine:
    """Moves bytes between host physical memory and NIC SRAM.

    Parameters
    ----------
    physical:
        The host :class:`~repro.memsim.physical.PhysicalMemory`.
    sram:
        The :class:`~repro.nic.sram.NicSram`.
    setup_us / bandwidth_bytes_per_us:
        Timing model: cost = setup + bytes / bandwidth.
    """

    def __init__(self, physical, sram, setup_us=1.5,
                 bandwidth_bytes_per_us=128.0):
        if bandwidth_bytes_per_us <= 0:
            raise NicError("bandwidth must be positive")
        self.physical = physical
        self.sram = sram
        self.setup_us = setup_us
        self.bandwidth = bandwidth_bytes_per_us
        self.stats = DmaStats()

    def _charge(self, nbytes):
        self.stats.transfers += 1
        self.stats.time_us += self.setup_us + nbytes / self.bandwidth

    def _check_len(self, nbytes):
        if nbytes <= 0:
            raise NicError("DMA length must be positive")
        if nbytes > params.MAX_DMA_BYTES:
            raise NicError(
                "DMA of %d bytes exceeds the firmware's %d-byte (one page) "
                "limit — transfers must be split at page boundaries"
                % (nbytes, params.MAX_DMA_BYTES))

    # -- user data ---------------------------------------------------------------

    def host_to_nic(self, frame, offset, sram_addr, nbytes):
        """DMA ``nbytes`` from a host frame into NIC SRAM."""
        self._check_len(nbytes)
        data = self.physical.read(frame, offset, nbytes)
        self.sram.write(sram_addr, data)
        self.stats.bytes_host_to_nic += nbytes
        self._charge(nbytes)
        return data

    def nic_to_host(self, sram_addr, frame, offset, nbytes):
        """DMA ``nbytes`` from NIC SRAM into a host frame."""
        self._check_len(nbytes)
        data = self.sram.read(sram_addr, nbytes)
        self.physical.write(frame, offset, data)
        self.stats.bytes_nic_to_host += nbytes
        self._charge(nbytes)
        return data

    # -- translation entries --------------------------------------------------------

    def fetch_translation_entries(self, num_entries):
        """Account for fetching translation entries from a host-memory
        second-level table (the Shared UTLB-Cache miss path).

        The entries themselves are read through the table object (the
        simulation keeps them as Python data, not packed bytes); this call
        models the bus transaction: one DMA of ``num_entries`` 4-byte
        entries.
        """
        if num_entries <= 0:
            raise NicError("must fetch at least one entry")
        nbytes = num_entries * params.UTLB_CACHE_ENTRY_BYTES
        self.stats.bytes_host_to_nic += nbytes
        self._charge(nbytes)
        return nbytes
