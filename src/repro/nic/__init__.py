"""Network-interface substrate: SRAM, DMA engine, command post buffers,
the host interrupt line, and the MCP firmware."""

from repro.nic.command_queue import (
    Command,
    CommandQueue,
    FetchCommand,
    SendCommand,
)
from repro.nic.dma import DmaEngine, DmaStats
from repro.nic.lanai import CYCLES, LanaiProcessor
from repro.nic.interrupts import (
    InterruptLine,
    VECTOR_MESSAGE_ARRIVED,
    VECTOR_TABLE_SWAPPED,
    VECTOR_TRANSLATION_MISS,
)
from repro.nic.mcp import Mcp, McpStats
from repro.nic.sram import NicSram, SramRegion

__all__ = [
    "Command",
    "CommandQueue",
    "DmaEngine",
    "DmaStats",
    "CYCLES",
    "FetchCommand",
    "InterruptLine",
    "LanaiProcessor",
    "Mcp",
    "McpStats",
    "NicSram",
    "SendCommand",
    "SramRegion",
    "VECTOR_MESSAGE_ARRIVED",
    "VECTOR_TABLE_SWAPPED",
    "VECTOR_TRANSLATION_MISS",
]
