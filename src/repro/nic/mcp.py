"""The Myrinet Control Program (MCP): the firmware on the NIC processor.

The MCP is the consumer side of the VMMC system architecture (Figure 6):
it polls the per-process command post buffers in order, translates user
buffers page by page through the Shared UTLB-Cache, and moves data with
the DMA engine.  On the receive side it resolves exported-buffer ids
(honouring transfer redirection) and DMAs payloads into host memory.

The MCP knows nothing about the OS — its only paths to the host are DMA
and the interrupt line, exactly as on real hardware.
"""

from repro import params
from repro.core import addresses
from repro.core.translation_table import TableSwappedError
from repro.errors import NicError, ProtectionError
from repro.network.packet import KIND_DATA, KIND_FETCH_REQ, Packet
from repro.nic.interrupts import VECTOR_TABLE_SWAPPED

#: SRAM staging buffer for in-flight page chunks.
STAGING_BYTES = 2 * params.PAGE_SIZE


class McpStats:
    __slots__ = ("commands", "sends", "fetches", "chunks_sent",
                 "chunks_received", "bytes_sent", "bytes_received",
                 "fetch_requests_served")

    def __init__(self):
        self.commands = 0
        self.sends = 0
        self.fetches = 0
        self.chunks_sent = 0
        self.chunks_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.fetch_requests_served = 0


class Mcp:
    """Firmware for one network interface.

    Parameters
    ----------
    node_id:
        The node this NIC serves.
    sram, dma:
        The NIC's SRAM and DMA engine.
    endpoint:
        The :class:`~repro.network.reliability.ReliableEndpoint`; the MCP
        registers itself as the endpoint's deliver upcall.
    exports:
        The node's :class:`~repro.vmmc.buffers.ExportRegistry` (receive
        side).
    interrupt_line:
        NIC → host interrupts (used only for swapped second-level tables
        and optional arrival notification — never on the common path).
    """

    def __init__(self, node_id, sram, dma, endpoint, exports,
                 interrupt_line=None, notifier=None, lanai=None):
        self.node_id = node_id
        self.sram = sram
        self.dma = dma
        self.endpoint = endpoint
        self.exports = exports
        self.interrupt_line = interrupt_line
        self.notifier = notifier
        self.lanai = lanai
        self.staging = sram.allocate("mcp-staging", STAGING_BYTES)
        self._queues = []            # command queues, poll order = registration
        self._utlbs = {}             # pid -> HierarchicalUtlb (NIC-side view)
        self.stats = McpStats()
        endpoint.deliver = self.handle_delivered

    # -- registration ----------------------------------------------------------------

    def register_process(self, pid, queue, utlb):
        """Attach a process's command queue and translation machinery."""
        if pid in self._utlbs:
            raise NicError("pid %r already registered with the MCP" % (pid,))
        self._queues.append(queue)
        self._utlbs[pid] = utlb

    def utlb_for(self, pid):
        try:
            return self._utlbs[pid]
        except KeyError:
            raise ProtectionError("pid %r unknown to the NIC" % (pid,))

    # -- command processing -------------------------------------------------------------

    def poll(self, budget=None):
        """Process pending commands round-robin; returns how many ran.

        ``budget`` bounds the number of commands processed (None = drain
        everything currently posted).
        """
        processed = 0
        while budget is None or processed < budget:
            command = self._next_command()
            if command is None:
                break
            self._execute(command)
            processed += 1
        return processed

    def _next_command(self):
        for queue in self._queues:
            command = queue.poll()
            if command is not None:
                return command
            self._charge("poll_empty")
        return None

    def _charge(self, operation, count=1):
        if self.lanai is not None:
            self.lanai.charge(operation, count)

    def _execute(self, command):
        self.stats.commands += 1
        self._charge("command_dispatch")
        if command.kind == "send":
            self._execute_send(command)
        elif command.kind == "fetch":
            self._execute_fetch(command)
        else:
            raise NicError("MCP cannot execute command kind %r"
                           % (command.kind,))

    def _execute_send(self, command):
        """Remote store: stream the local buffer to the remote node."""
        self.stats.sends += 1
        handle = command.import_handle
        utlb = self.utlb_for(command.pid)
        sent = 0
        for chunk_va, chunk_len in addresses.split_at_page_boundaries(
                command.local_vaddr, command.nbytes):
            frame = self._translate(utlb, addresses.vpage_of(chunk_va))
            self._charge("dma_setup")
            data = self.dma.host_to_nic(
                frame, addresses.page_offset(chunk_va),
                self.staging.base, chunk_len)
            self._send_or_deliver(
                handle.node_id, KIND_DATA,
                payload={
                    "mode": "export",
                    "export_id": handle.export_id,
                    "offset": command.remote_offset + sent,
                    "data": data,
                },
                data_bytes=chunk_len)
            self.stats.chunks_sent += 1
            self.stats.bytes_sent += chunk_len
            sent += chunk_len

    def _execute_fetch(self, command):
        """Remote fetch: ask the (possibly local) NIC for the data."""
        self.stats.fetches += 1
        handle = command.import_handle
        self._send_or_deliver(
            handle.node_id, KIND_FETCH_REQ,
            payload={
                "export_id": handle.export_id,
                "offset": command.remote_offset,
                "nbytes": command.nbytes,
                "reply_pid": command.pid,
                "reply_vaddr": command.local_vaddr,
            })

    def _send_or_deliver(self, dst, kind, payload, data_bytes=0):
        """Route through the fabric, or loop back locally when source and
        destination processes share this NIC (intra-node transfers never
        touch the network — the NIC moves the data itself)."""
        if dst == self.node_id:
            self._dispatch(kind, payload, src=self.node_id)
            return
        self._charge("packet_build")
        self.endpoint.send(Packet(self.node_id, dst, kind,
                                  payload=payload, data_bytes=data_bytes))

    def _translate(self, utlb, vpage):
        """NIC-side translation, with the swapped-table interrupt path."""
        misses_before = utlb.stats.ni_misses
        try:
            frame = utlb.nic_translate_page(vpage)
        except TableSwappedError as exc:
            if self.interrupt_line is None:
                raise
            self._charge("interrupt_raise")
            self.interrupt_line.raise_interrupt(
                VECTOR_TABLE_SWAPPED, pid=utlb.pid,
                dir_index=exc.dir_index)
            frame = utlb.nic_translate_page(vpage)
        self._charge("cache_probe")
        if utlb.stats.ni_misses > misses_before:
            self._charge("table_walk")
            self._charge("dma_setup")       # the entry-fetch DMA
        return frame

    # -- receive side -----------------------------------------------------------------------

    def handle_delivered(self, packet):
        """Upcall from the reliability layer for each in-order packet."""
        self._charge("packet_receive")
        self._dispatch(packet.kind, packet.payload, src=packet.src)

    def _dispatch(self, kind, payload, src):
        if kind == KIND_DATA:
            self._handle_data(payload, src)
        elif kind == KIND_FETCH_REQ:
            self._handle_fetch_request(payload, src)
        else:
            raise NicError("MCP received unexpected packet kind %r"
                           % (kind,))

    def _handle_data(self, payload, src):
        export = None
        if payload["mode"] == "export":
            export = self.exports.lookup(payload["export_id"])
            base_vaddr = export.delivery_vaddr()
            pid = export.pid
            if payload["offset"] + len(payload["data"]) > export.nbytes:
                raise ProtectionError(
                    "incoming data overruns exported buffer %r"
                    % (payload["export_id"],))
            target = base_vaddr + payload["offset"]
        elif payload["mode"] == "direct":
            pid = payload["pid"]
            target = payload["vaddr"] + payload["offset"]
        else:
            raise NicError("unknown data delivery mode %r"
                           % (payload["mode"],))
        self._deliver_bytes(pid, target, payload["data"])
        if export is not None and self.notifier is not None:
            self.notifier.notify(export, payload["offset"],
                                 len(payload["data"]), from_node=src)

    def _deliver_bytes(self, pid, vaddr, data):
        """Write payload bytes into host memory through the UTLB."""
        utlb = self.utlb_for(pid)
        cursor = 0
        for chunk_va, chunk_len in addresses.split_at_page_boundaries(
                vaddr, len(data)):
            frame = self._translate(utlb, addresses.vpage_of(chunk_va))
            self.sram.write(self.staging.base,
                            data[cursor:cursor + chunk_len])
            self._charge("dma_setup")
            self.dma.nic_to_host(self.staging.base, frame,
                                 addresses.page_offset(chunk_va), chunk_len)
            cursor += chunk_len
            self.stats.chunks_received += 1
            self.stats.bytes_received += chunk_len

    def _handle_fetch_request(self, payload, src):
        """Serve a remote fetch: stream the exported data back."""
        export = self.exports.lookup(payload["export_id"])
        if payload["offset"] + payload["nbytes"] > export.nbytes:
            raise ProtectionError(
                "fetch overruns exported buffer %r" % (payload["export_id"],))
        utlb = self.utlb_for(export.pid)
        self.stats.fetch_requests_served += 1
        source_vaddr = export.vaddr + payload["offset"]
        sent = 0
        for chunk_va, chunk_len in addresses.split_at_page_boundaries(
                source_vaddr, payload["nbytes"]):
            frame = self._translate(utlb, addresses.vpage_of(chunk_va))
            data = self.dma.host_to_nic(
                frame, addresses.page_offset(chunk_va),
                self.staging.base, chunk_len)
            self._send_or_deliver(
                src, KIND_DATA,
                payload={
                    "mode": "direct",
                    "pid": payload["reply_pid"],
                    "vaddr": payload["reply_vaddr"],
                    "offset": sent,
                    "data": data,
                },
                data_bytes=chunk_len)
            sent += chunk_len
