"""The NIC → host interrupt line.

UTLB's whole point is to keep this line quiet on the common path: the
paper's headline claim is that UTLB "eliminates system calls and device
interrupts from the common communication path".  The line counts every
interrupt it raises, so tests can assert exactly that.
"""

from repro.errors import NicError

#: Interrupt vectors used by the VMMC firmware.
VECTOR_TRANSLATION_MISS = "translation-miss"    # interrupt-based baseline
VECTOR_TABLE_SWAPPED = "table-swapped"          # 2nd-level table on disk
VECTOR_MESSAGE_ARRIVED = "message-arrived"      # optional receive notification


class InterruptLine:
    """Connects one NIC to its host OS's interrupt dispatch."""

    def __init__(self, os):
        self.os = os
        self.raised = 0
        self.by_vector = {}

    def raise_interrupt(self, vector, **kwargs):
        """Interrupt the host CPU; returns the handler's result."""
        if not vector:
            raise NicError("interrupt vector must be non-empty")
        self.raised += 1
        self.by_vector[vector] = self.by_vector.get(vector, 0) + 1
        return self.os.raise_interrupt(vector, **kwargs)
