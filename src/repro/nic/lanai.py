"""LANai processor model: cycle accounting for the NIC firmware.

The Myrinet PCI interface carries a 33 MHz LANai 4.2 RISC core with no
instruction or data caches (which is why the paper could time operations
by simple averaging).  This model charges firmware work in cycles and
converts to microseconds, letting the functional simulation report NIC
processor *occupancy* — the resource the Shared UTLB-Cache design spends
(serial probes) and the per-process UTLB design saves.

Cycle costs are order-of-magnitude estimates consistent with the paper's
measured operation times: a 0.8 µs cache probe is ~26 cycles at 33 MHz.
"""

from repro.errors import NicError

#: LANai 4.2 clock (cycles per microsecond).
CLOCK_MHZ = 33.0

#: Firmware operation costs in cycles.
CYCLES = {
    "poll_empty": 8,          # check one command queue, find nothing
    "command_dispatch": 20,   # parse a posted command
    "cache_probe": 26,        # one translation-cache entry check (~0.8 us)
    "table_walk": 16,         # directory read for a miss's table address
    "dma_setup": 48,          # program one DMA transaction (~1.5 us)
    "packet_build": 30,       # header construction + route lookup
    "packet_receive": 24,     # delivery upcall handling
    "interrupt_raise": 12,    # assert the host interrupt line
}


class LanaiProcessor:
    """Cycle accounting for one NIC's firmware."""

    def __init__(self, clock_mhz=CLOCK_MHZ):
        if clock_mhz <= 0:
            raise NicError("clock must be positive")
        self.clock_mhz = clock_mhz
        self.cycles = 0
        self.by_operation = {}

    def charge(self, operation, count=1):
        """Charge ``count`` occurrences of a firmware operation."""
        try:
            cost = CYCLES[operation]
        except KeyError:
            raise NicError("unknown LANai operation %r" % (operation,))
        if count < 0:
            raise NicError("count must be non-negative")
        total = cost * count
        self.cycles += total
        self.by_operation[operation] = (
            self.by_operation.get(operation, 0) + total)
        return total

    @property
    def busy_us(self):
        """Microseconds of firmware execution charged so far."""
        return self.cycles / self.clock_mhz

    def occupancy(self, elapsed_us):
        """Fraction of ``elapsed_us`` the processor spent busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / elapsed_us)

    def breakdown_us(self):
        """{operation: microseconds}, descending."""
        return dict(sorted(
            ((op, cycles / self.clock_mhz)
             for op, cycles in self.by_operation.items()),
            key=lambda kv: -kv[1]))
