"""Network-interface SRAM: a small, precious, byte-addressed memory.

The Myrinet LANai 4.2 board carries 1 MB of SRAM which must hold the
control program, command post buffers, the Shared UTLB-Cache, and the
Hierarchical-UTLB page directories.  This model provides named region
allocation (so components can account for their footprint — the scarcity
of SRAM is the entire motivation for the Shared UTLB-Cache, Section 3.2)
plus byte read/write for the functional data path.
"""

from repro import params
from repro.errors import CapacityError, NicError


class SramRegion:
    """One named allocation inside NIC SRAM."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name, base, size):
        self.name = name
        self.base = base
        self.size = size

    def __repr__(self):
        return "SramRegion(%r, base=%#x, size=%d)" % (
            self.name, self.base, self.size)


class NicSram:
    """Byte-addressable SRAM with a simple region allocator."""

    def __init__(self, size=params.NIC_SRAM_BYTES):
        if size <= 0:
            raise NicError("SRAM size must be positive")
        self.size = size
        self._data = bytearray(size)
        self._regions = {}
        self._cursor = 0

    # -- allocation ------------------------------------------------------------

    def allocate(self, name, nbytes):
        """Reserve ``nbytes``; returns the :class:`SramRegion`.

        Allocation is bump-pointer: regions are never compacted (firmware
        images lay SRAM out statically).
        """
        if name in self._regions:
            raise NicError("SRAM region %r already exists" % (name,))
        if nbytes <= 0:
            raise NicError("region size must be positive")
        if self._cursor + nbytes > self.size:
            raise CapacityError(
                "NIC SRAM exhausted: need %d bytes, %d free"
                % (nbytes, self.size - self._cursor))
        region = SramRegion(name, self._cursor, nbytes)
        self._regions[name] = region
        self._cursor += nbytes
        return region

    def region(self, name):
        try:
            return self._regions[name]
        except KeyError:
            raise NicError("no SRAM region named %r" % (name,))

    @property
    def used(self):
        return self._cursor

    @property
    def free(self):
        return self.size - self._cursor

    def regions(self):
        return sorted(self._regions.values(), key=lambda r: r.base)

    # -- byte access -------------------------------------------------------------

    def read(self, addr, nbytes):
        self._check_span(addr, nbytes)
        return bytes(self._data[addr:addr + nbytes])

    def write(self, addr, data):
        self._check_span(addr, len(data))
        self._data[addr:addr + len(data)] = data

    def _check_span(self, addr, nbytes):
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise NicError("SRAM access [%#x, %#x) out of range"
                           % (addr, addr + nbytes))
