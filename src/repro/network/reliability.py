"""Data-link-level reliable delivery between network interfaces.

VMMC-2 added "reliable communication that implements a retransmission
protocol at data link level (between network interfaces)" (Section 4.1).
This module implements a per-destination go-back-N style channel:

* the sender numbers packets, keeps unacked ones in a retransmission
  buffer, and resends after a timeout;
* the receiver delivers strictly in order, acknowledges cumulatively, and
  drops duplicates (re-acking so the sender can advance).

The endpoint sits between the MCP and the fabric: the MCP calls
:meth:`ReliableEndpoint.send`; arriving fabric packets go through
:meth:`ReliableEndpoint.handle_packet`, which hands deliverable data
packets to the MCP's upcall.  :meth:`tick` drives retransmission timers
(call it once per fabric step).
"""

from repro.errors import NetworkError
from repro.network.packet import KIND_ACK, Packet


class ChannelStats:
    __slots__ = ("sent", "retransmitted", "delivered", "duplicates",
                 "acks_sent", "acks_received")

    def __init__(self):
        self.sent = 0
        self.retransmitted = 0
        self.delivered = 0
        self.duplicates = 0
        self.acks_sent = 0
        self.acks_received = 0


class _SendChannel:
    """Sender state toward one destination."""

    __slots__ = ("next_seq", "unacked", "send_times")

    def __init__(self):
        self.next_seq = 0
        self.unacked = {}           # seq -> packet
        self.send_times = {}        # seq -> last transmit step


class _RecvChannel:
    """Receiver state from one source."""

    __slots__ = ("expected_seq", "reorder")

    def __init__(self):
        self.expected_seq = 0
        self.reorder = {}           # seq -> packet waiting for its turn


class ReliableEndpoint:
    """One NIC's reliability layer.

    Parameters
    ----------
    node_id:
        This NIC's node id.
    fabric:
        The :class:`~repro.network.switch.Fabric` to send through.
    deliver:
        Upcall ``deliver(packet)`` invoked for each in-order data packet.
    timeout_steps:
        Steps without an ack before a packet is retransmitted.
    max_retries:
        Retransmissions per packet before the destination is declared
        dead (:class:`NetworkError` from :meth:`tick`).
    """

    def __init__(self, node_id, fabric, deliver, timeout_steps=8,
                 max_retries=32):
        if timeout_steps < 1:
            raise NetworkError("timeout must be at least one step")
        self.node_id = node_id
        self.fabric = fabric
        self.deliver = deliver
        self.timeout_steps = timeout_steps
        self.max_retries = max_retries
        self._send = {}             # dst -> _SendChannel
        self._recv = {}             # src -> _RecvChannel
        self._retries = {}          # (dst, seq) -> count
        self.stats = ChannelStats()

    # -- sending --------------------------------------------------------------------

    def send(self, packet):
        """Reliably send a data packet (its ``seq`` is stamped here)."""
        channel = self._send.setdefault(packet.dst, _SendChannel())
        packet.seq = channel.next_seq
        channel.next_seq += 1
        channel.unacked[packet.seq] = packet
        channel.send_times[packet.seq] = self.fabric.now
        self._retries[(packet.dst, packet.seq)] = 0
        self.stats.sent += 1
        self.fabric.send(packet)
        return packet.seq

    def unacked_to(self, dst):
        channel = self._send.get(dst)
        return len(channel.unacked) if channel else 0

    # -- receiving -------------------------------------------------------------------

    def handle_packet(self, packet):
        """Entry point for every packet the fabric delivers to this node."""
        if packet.kind == KIND_ACK:
            self._handle_ack(packet)
            return
        self._handle_data(packet)

    def _handle_ack(self, packet):
        self.stats.acks_received += 1
        channel = self._send.get(packet.src)
        if channel is None:
            return
        acked_through = packet.payload["acked_through"]
        for seq in [s for s in channel.unacked if s <= acked_through]:
            del channel.unacked[seq]
            del channel.send_times[seq]
            self._retries.pop((packet.src, seq), None)

    def _handle_data(self, packet):
        channel = self._recv.setdefault(packet.src, _RecvChannel())
        if packet.seq < channel.expected_seq:
            self.stats.duplicates += 1
            self._ack(packet.src, channel)
            return
        channel.reorder[packet.seq] = packet
        while channel.expected_seq in channel.reorder:
            deliverable = channel.reorder.pop(channel.expected_seq)
            channel.expected_seq += 1
            self.stats.delivered += 1
            self.deliver(deliverable)
        self._ack(packet.src, channel)

    def _ack(self, src, channel):
        ack = Packet(self.node_id, src, KIND_ACK,
                     payload={"acked_through": channel.expected_seq - 1})
        ack.seq = -1
        self.stats.acks_sent += 1
        self.fabric.send(ack)

    # -- timers -----------------------------------------------------------------------

    def tick(self):
        """Retransmit timed-out packets; call once per fabric step."""
        now = self.fabric.now
        for dst, channel in self._send.items():
            for seq in sorted(channel.send_times):
                if now - channel.send_times[seq] < self.timeout_steps:
                    continue
                key = (dst, seq)
                self._retries[key] += 1
                if self._retries[key] > self.max_retries:
                    raise NetworkError(
                        "node %r: packet seq %d to %r exceeded %d retries"
                        % (self.node_id, seq, dst, self.max_retries))
                channel.send_times[seq] = now
                self.stats.retransmitted += 1
                self.fabric.send(channel.unacked[seq])

    def all_acked(self):
        """True when no packet is awaiting acknowledgement."""
        return all(not c.unacked for c in self._send.values())
