"""The Myrinet crossbar switch and fabric clock.

The fabric is star-shaped (every node has an up-link into the switch and a
down-link out of it), which matches the 4-node clusters of the paper.  The
switch keeps a port map from node id to down-link; *dynamic node
remapping* (the VMMC-2 reliability feature) re-points a node id at a
different physical port — packets in flight on the dead port are lost and
the retransmission layer recovers them.

Time advances in integer steps via :meth:`Fabric.step`; packets delivered
on a step are handed to the destination node's registered receive handler.
"""

from repro.errors import NetworkError
from repro.network.link import Link


class Fabric:
    """Switch + links + clock for one cluster."""

    def __init__(self, latency_steps=1, loss_rate=0.0, seed=0):
        self.latency_steps = latency_steps
        self.loss_rate = loss_rate
        self.seed = seed
        self.now = 0
        self._handlers = {}         # node id -> rx callback
        self._uplinks = {}          # node id -> Link into the switch
        self._ports = {}            # port id -> Link out of the switch
        self._port_of_node = {}     # node id -> port id
        self._next_port = 0
        self.routed = 0
        self.undeliverable = 0

    # -- topology -----------------------------------------------------------------

    def attach(self, node_id, handler):
        """Connect a node: allocates its up-link and a switch port."""
        if node_id in self._handlers:
            raise NetworkError("node %r already attached" % (node_id,))
        self._handlers[node_id] = handler
        self._uplinks[node_id] = Link(
            "up:%r" % (node_id,), self.latency_steps, self.loss_rate,
            seed=self.seed * 7919 + len(self._uplinks))
        port = self._next_port
        self._next_port += 1
        self._ports[port] = Link(
            "down:%d" % port, self.latency_steps, self.loss_rate,
            seed=self.seed * 104729 + port)
        self._port_of_node[node_id] = port
        return port

    def nodes(self):
        return sorted(self._handlers, key=repr)

    def uplink(self, node_id):
        return self._uplinks[node_id]

    def downlink(self, node_id):
        return self._ports[self._port_of_node[node_id]]

    def remap_node(self, node_id):
        """Dynamic node remapping: move a node to a fresh switch port.

        Models the VMMC-2 procedure for dealing with link and port
        failures: the old down-link is abandoned (its in-flight packets
        are lost) and the node id routes through a new port from now on.
        Returns the new port id.
        """
        if node_id not in self._port_of_node:
            raise NetworkError("node %r not attached" % (node_id,))
        old_port = self._port_of_node[node_id]
        self._ports[old_port].take_down()
        port = self._next_port
        self._next_port += 1
        self._ports[port] = Link(
            "down:%d" % port, self.latency_steps, self.loss_rate,
            seed=self.seed * 104729 + port)
        self._port_of_node[node_id] = port
        return port

    # -- data movement ---------------------------------------------------------------

    def send(self, packet):
        """Inject a packet at its source node's up-link."""
        try:
            uplink = self._uplinks[packet.src]
        except KeyError:
            raise NetworkError("source node %r not attached" % (packet.src,))
        if packet.dst not in self._handlers:
            raise NetworkError("destination node %r not attached"
                               % (packet.dst,))
        uplink.send(packet, self.now)

    def step(self, n=1):
        """Advance time ``n`` steps, moving packets through the crossbar."""
        for _ in range(n):
            self.now += 1
            # Up-links deliver into the switch; the crossbar routes each
            # packet onto its destination's down-link in the same step.
            for node_id, uplink in self._uplinks.items():
                for packet in uplink.deliver(self.now):
                    self.routed += 1
                    port = self._port_of_node.get(packet.dst)
                    if port is None:
                        self.undeliverable += 1
                        continue
                    self._ports[port].send(packet, self.now)
            # Down-links deliver to node receive handlers.
            for node_id, port in list(self._port_of_node.items()):
                for packet in self._ports[port].deliver(self.now):
                    self._handlers[packet.dst](packet)
        return self.now
