"""Myrinet-like network fabric: packets, links, a crossbar switch with
dynamic node remapping, and data-link-level reliable delivery."""

from repro.network.link import Link, LinkStats
from repro.network.packet import (
    HEADER_BYTES,
    KIND_ACK,
    KIND_DATA,
    KIND_FETCH_REQ,
    Packet,
)
from repro.network.reliability import ChannelStats, ReliableEndpoint
from repro.network.switch import Fabric

__all__ = [
    "ChannelStats",
    "Fabric",
    "HEADER_BYTES",
    "KIND_ACK",
    "KIND_DATA",
    "KIND_FETCH_REQ",
    "Link",
    "LinkStats",
    "Packet",
    "ReliableEndpoint",
]
