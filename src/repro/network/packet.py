"""Packet framing for the simulated Myrinet fabric.

Myrinet is a switched, point-to-point, source-routed network; for the
purposes of this reproduction a packet carries its source and destination
node ids, a kind tag, a payload dict, and a reliability-layer sequence
number.  Sizes are tracked so links can account for bandwidth.
"""

import itertools

from repro.errors import NetworkError

#: Packet kinds used by the VMMC firmware.
KIND_DATA = "data"              # remote store: one page-chunk of user data
KIND_FETCH_REQ = "fetch-req"    # remote fetch request
KIND_ACK = "ack"                # reliability-layer cumulative ack

#: Bytes of header per packet (route + kind + addressing + CRC).
HEADER_BYTES = 24

_packet_ids = itertools.count()


class Packet:
    """One network packet."""

    __slots__ = ("packet_id", "src", "dst", "kind", "payload", "seq",
                 "data_bytes")

    def __init__(self, src, dst, kind, payload=None, data_bytes=0):
        if src == dst:
            raise NetworkError("loopback packets never enter the fabric")
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload if payload is not None else {}
        self.seq = None             # stamped by the reliability layer
        self.data_bytes = data_bytes

    @property
    def wire_bytes(self):
        return HEADER_BYTES + self.data_bytes

    def __repr__(self):
        return "Packet(#%d %r->%r %s seq=%r %dB)" % (
            self.packet_id, self.src, self.dst, self.kind, self.seq,
            self.wire_bytes)
