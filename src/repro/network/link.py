"""A point-to-point Myrinet link with latency, bandwidth, and faults.

Links move packets between a node and the switch.  Each link has a fixed
delivery latency (in simulation steps), an optional packet-loss rate (to
exercise the retransmission protocol), and can be taken down entirely (to
exercise dynamic node remapping).
"""

import random

from repro import params
from repro.errors import NetworkError


class LinkStats:
    __slots__ = ("sent", "delivered", "dropped", "bytes")

    def __init__(self):
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.bytes = 0


class Link:
    """One direction of a point-to-point link."""

    def __init__(self, name, latency_steps=1, loss_rate=0.0, seed=0,
                 bandwidth=params.LINK_BANDWIDTH):
        if latency_steps < 1:
            raise NetworkError("latency must be at least one step")
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("loss rate must be in [0, 1)")
        self.name = name
        self.latency_steps = latency_steps
        self.loss_rate = loss_rate
        self.bandwidth = bandwidth
        self.up = True
        self._rng = random.Random(seed)
        self._in_flight = []        # (deliver_at_step, insertion order, packet)
        self._order = 0
        self.stats = LinkStats()

    def send(self, packet, now):
        """Inject a packet; it arrives ``latency_steps`` later (or never)."""
        self.stats.sent += 1
        self.stats.bytes += packet.wire_bytes
        if not self.up:
            self.stats.dropped += 1
            return False
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats.dropped += 1
            return False
        self._in_flight.append((now + self.latency_steps, self._order, packet))
        self._order += 1
        return True

    def deliver(self, now):
        """Packets whose latency has elapsed, in injection order."""
        if not self._in_flight:
            return []
        due = sorted(p for p in self._in_flight if p[0] <= now)
        self._in_flight = [p for p in self._in_flight if p[0] > now]
        delivered = [packet for _, _, packet in due]
        self.stats.delivered += len(delivered)
        return delivered

    def take_down(self):
        """Fail the link: in-flight and future packets are lost."""
        self.up = False
        self.stats.dropped += len(self._in_flight)
        self._in_flight = []

    def bring_up(self):
        self.up = True

    @property
    def in_flight(self):
        return len(self._in_flight)
