"""Transfer redirection (Section 4.1, enabled by the UTLB).

"Transfer-redirection 'redirects' incoming data from its default location
to another user buffer specified by the application.  This enables
zero-copy implementations of high-level communication APIs."

The receiver nominates an alternate destination for an exported buffer;
from then on incoming remote stores land in the alternate buffer instead
of the export's home address.  The alternate buffer must be pinned and
translated — which is exactly what the UTLB provides without a syscall on
the data path: only the (rare) redirect call itself pins pages.
"""

from repro.core import addresses
from repro.errors import ProtectionError


def redirect(library, export_id, new_vaddr):
    """Redirect an export owned by ``library``'s process to ``new_vaddr``.

    The new buffer must be as large as the export.  Its pages are pinned
    via the UTLB (and held against eviction); the pages of any previous
    redirect target are released.  Returns the list of newly pinned pages.
    """
    export = library.exports.lookup(export_id)
    if export.pid != library.pid:
        raise ProtectionError(
            "pid %r cannot redirect export %d owned by pid %r"
            % (library.pid, export_id, export.pid))
    addresses.validate_vaddr(new_vaddr)
    addresses.validate_vaddr(new_vaddr + export.nbytes - 1)

    newly_pinned = library.utlb.ensure_pinned(new_vaddr, export.nbytes)
    for vpage in addresses.page_range(new_vaddr, export.nbytes):
        library.utlb.hold(vpage)

    _release_target(library, export)
    export.redirect_vaddr = new_vaddr
    return newly_pinned


def clear_redirect(library, export_id):
    """Restore an export's default delivery location."""
    export = library.exports.lookup(export_id)
    if export.pid != library.pid:
        raise ProtectionError(
            "pid %r cannot modify export %d owned by pid %r"
            % (library.pid, export_id, export.pid))
    _release_target(library, export)
    export.redirect_vaddr = None


def _release_target(library, export):
    """Drop the eviction holds of the current redirect target, if any."""
    if export.redirect_vaddr is None:
        return
    for vpage in addresses.page_range(export.redirect_vaddr, export.nbytes):
        library.utlb.release(vpage)
