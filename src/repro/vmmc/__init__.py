"""VMMC: Virtual Memory-Mapped Communication (Section 4).

The protected user-level communication model the UTLB serves: exported
receive buffers, remote store, remote fetch, transfer redirection, and
reliable delivery, running on simulated hosts and NICs.
"""

from repro.vmmc.api import barrier, remote_fetch, remote_store
from repro.vmmc.buffers import ExportRegistry, ExportedBuffer, ImportHandle
from repro.vmmc.driver import VmmcDriver
from repro.vmmc.library import VmmcLibrary
from repro.vmmc.node import Cluster, ClusterNode
from repro.vmmc.redirection import clear_redirect, redirect

__all__ = [
    "Cluster",
    "ClusterNode",
    "ExportRegistry",
    "ExportedBuffer",
    "ImportHandle",
    "VmmcDriver",
    "VmmcLibrary",
    "barrier",
    "clear_redirect",
    "redirect",
    "remote_fetch",
    "remote_store",
]
