"""High-level VMMC operations: synchronous remote store and remote fetch.

The library posts commands asynchronously (that is the whole point — the
common path never blocks in the OS).  These helpers wrap post-and-drain
for programs that want RPC-style semantics: post, drive the cluster until
the fabric drains, release the eviction holds.
"""

from repro.errors import NetworkError


def remote_store(cluster, sender, local_vaddr, nbytes, handle,
                 remote_offset=0, max_steps=100000):
    """Send ``nbytes`` from the sender's buffer into an imported buffer
    and wait for delivery.  Returns the number of fabric steps taken."""
    seq = sender.send(local_vaddr, nbytes, handle, remote_offset)
    steps = cluster.run_until_quiet(max_steps=max_steps)
    sender.complete(seq)
    return steps


def remote_fetch(cluster, fetcher, local_vaddr, nbytes, handle,
                 remote_offset=0, max_steps=100000):
    """Fetch ``nbytes`` from an imported buffer into the fetcher's local
    buffer and wait for the data.  Returns the number of fabric steps."""
    seq = fetcher.fetch(local_vaddr, nbytes, handle, remote_offset)
    steps = cluster.run_until_quiet(max_steps=max_steps)
    fetcher.complete(seq)
    return steps


def barrier(cluster, max_steps=100000):
    """Drain everything outstanding in the cluster."""
    steps = cluster.run_until_quiet(max_steps=max_steps)
    for node in cluster.nodes():
        for library in node.libraries():
            library.complete()
    if not cluster.quiescent():
        raise NetworkError("cluster still busy after barrier")
    return steps
