"""The user-level VMMC library — the API applications program against.

One :class:`VmmcLibrary` per process.  It implements the send path of
Figure 2: look up the buffer in the user-level structure, pin missing
pages through the driver, then post the request (with no OS involvement)
to the process's command buffer on the NIC.  It also provides export /
import / remote fetch / transfer redirection (Section 4.1).
"""

from repro.core import addresses
from repro.errors import ProtectionError
from repro.nic.command_queue import FetchCommand, SendCommand
from repro.vmmc.buffers import ExportedBuffer, ImportHandle


class VmmcLibrary:
    """User-level communication library for one process.

    Parameters
    ----------
    process:
        The owning :class:`~repro.memsim.os_kernel.Process`.
    utlb:
        The process's :class:`~repro.core.utlb.HierarchicalUtlb`.
    queue:
        The process's NIC command queue.
    exports:
        The node's export registry.
    cluster:
        The :class:`~repro.vmmc.node.Cluster`, used to validate imports
        (the connection-setup control path, which may use the OS freely —
        only the data path must avoid it).
    """

    def __init__(self, process, utlb, queue, exports, cluster, node_id,
                 notifier=None):
        self.process = process
        self.utlb = utlb
        self.queue = queue
        self.exports = exports
        self.cluster = cluster
        self.node_id = node_id
        self.notifier = notifier
        self._imports = {}
        # Optional instrumentation (repro.traces.capture.TraceRecorder):
        # records every send/fetch like the paper's traced VMMC build.
        self.trace_recorder = None
        self.trace_node = node_id

    @property
    def pid(self):
        return self.process.pid

    # -- buffer setup ------------------------------------------------------------

    def export(self, vaddr, nbytes):
        """Export a receive buffer; returns its export id.

        The buffer is pinned for its exported lifetime and its
        translations enter the Hierarchical-UTLB table, so the NIC can
        deliver into it without host involvement.
        """
        export = ExportedBuffer(self.pid, vaddr, nbytes, self.node_id)
        self.utlb.ensure_pinned(vaddr, nbytes)
        for vpage in addresses.page_range(vaddr, nbytes):
            self.utlb.hold(vpage)      # exported pages are never evicted
        return self.exports.register(export)

    def unexport(self, export_id):
        """Withdraw an export; its pages become evictable again."""
        export = self.exports.lookup(export_id)
        if export.pid != self.pid:
            raise ProtectionError("export %d belongs to pid %r"
                                  % (export_id, export.pid))
        for vpage in addresses.page_range(export.vaddr, export.nbytes):
            self.utlb.release(vpage)
        return self.exports.unregister(export_id)

    def enable_notifications(self, export_id, mode="poll"):
        """Turn on arrival notifications for an export this process owns.

        ``mode='poll'`` keeps the data path interrupt-free (the UTLB
        philosophy); ``mode='interrupt'`` additionally wakes the host per
        arrival.
        """
        export = self.exports.lookup(export_id)
        if export.pid != self.pid:
            raise ProtectionError("export %d belongs to pid %r"
                                  % (export_id, export.pid))
        if self.notifier is None:
            raise ProtectionError("this node has no notification support")
        self.notifier.enable(export, mode=mode)

    def poll_notifications(self, max_records=None):
        """Drain pending arrival notifications (user-level, no syscall)."""
        if self.notifier is None:
            return []
        return self.notifier.poll(self.pid, max_records=max_records)

    def import_buffer(self, remote_node, export_id):
        """Gain access to a remote exported buffer; returns a handle."""
        export = self.cluster.lookup_export(remote_node, export_id)
        handle = ImportHandle(remote_node, export_id, export.nbytes)
        self._imports[(remote_node, export_id)] = handle
        return handle

    # -- data transfer (the common path: no syscalls, no interrupts) -----------------

    def send(self, local_vaddr, nbytes, handle, remote_offset=0):
        """Remote store: send a local buffer into an imported buffer.

        Performs the user-level UTLB check (pinning on demand), protects
        the pages while the send is outstanding, and posts the command to
        the NIC.  Returns the command sequence number.
        """
        self._check_import(handle, remote_offset, nbytes)
        if self.trace_recorder is not None:
            self.trace_recorder.record(self, "send", local_vaddr, nbytes)
        pages = list(addresses.page_range(local_vaddr, nbytes))
        for vpage in pages:
            self.utlb.user_check_page(vpage)
        for vpage in pages:
            self.utlb.hold(vpage)
        command = SendCommand(self.pid, local_vaddr, nbytes, handle,
                              remote_offset)
        seq = self.queue.post(command)
        # The functional simulation completes commands synchronously once
        # the MCP runs, so the hold window is command-lifetime; the MCP
        # cannot observe an unpinned source page mid-transfer.
        self._pending_holds = getattr(self, "_pending_holds", [])
        self._pending_holds.append((seq, pages))
        return seq

    def fetch(self, local_vaddr, nbytes, handle, remote_offset=0):
        """Remote fetch: pull remote exported data into a local buffer."""
        self._check_import(handle, remote_offset, nbytes)
        if self.trace_recorder is not None:
            self.trace_recorder.record(self, "fetch", local_vaddr, nbytes)
        pages = list(addresses.page_range(local_vaddr, nbytes))
        for vpage in pages:
            self.utlb.user_check_page(vpage)
        for vpage in pages:
            self.utlb.hold(vpage)
        command = FetchCommand(self.pid, local_vaddr, nbytes, handle,
                               remote_offset)
        seq = self.queue.post(command)
        self._pending_holds = getattr(self, "_pending_holds", [])
        self._pending_holds.append((seq, pages))
        return seq

    def complete(self, seq=None):
        """Release the eviction holds of completed sends/fetches.

        ``seq=None`` releases everything (call after the cluster drains).
        """
        pending = getattr(self, "_pending_holds", [])
        keep = []
        for entry_seq, pages in pending:
            if seq is None or entry_seq == seq:
                for vpage in pages:
                    self.utlb.release(vpage)
            else:
                keep.append((entry_seq, pages))
        self._pending_holds = keep

    def _check_import(self, handle, offset, nbytes):
        key = (handle.node_id, handle.export_id)
        if key not in self._imports:
            raise ProtectionError(
                "pid %r has not imported buffer %r" % (self.pid, key))
        if offset < 0 or nbytes <= 0 or offset + nbytes > handle.nbytes:
            raise ProtectionError(
                "transfer [%d, %d) outside imported buffer of %d bytes"
                % (offset, offset + nbytes, handle.nbytes))

    # -- convenience -------------------------------------------------------------------

    def write_memory(self, vaddr, data):
        """Write into this process's (virtual) memory."""
        self.process.space.write(vaddr, data)

    def read_memory(self, vaddr, nbytes):
        """Read from this process's (virtual) memory."""
        return self.process.space.read(vaddr, nbytes)

    @property
    def stats(self):
        """The process's translation statistics."""
        return self.utlb.stats
