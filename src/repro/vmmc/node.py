"""Cluster nodes: one host + NIC, wired into a fabric.

:class:`ClusterNode` composes the whole per-host stack of Figure 6 —
simulated OS, physical memory, VMMC driver, NIC SRAM, DMA engine, Shared
UTLB-Cache, command queues, MCP firmware, and the reliable endpoint —
and :class:`Cluster` owns the fabric plus the node set, with a driving
loop (`step` / `run_until_quiet`) that moves commands and packets until
the system drains.
"""

from repro import params
from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.shared_cache import SharedUtlbCache
from repro.core.utlb import HierarchicalUtlb
from repro.errors import ConfigError, NetworkError, ProtectionError
from repro.memsim.os_kernel import SimulatedOS
from repro.memsim.physical import PhysicalMemory
from repro.network.switch import Fabric
from repro.nic.command_queue import CommandQueue
from repro.nic.dma import DmaEngine
from repro.nic.interrupts import (
    InterruptLine,
    VECTOR_MESSAGE_ARRIVED,
    VECTOR_TABLE_SWAPPED,
)
from repro.nic.lanai import LanaiProcessor
from repro.nic.mcp import Mcp
from repro.nic.sram import NicSram
from repro.network.reliability import ReliableEndpoint
from repro.vmmc.buffers import ExportRegistry
from repro.vmmc.driver import VmmcDriver
from repro.vmmc.library import VmmcLibrary
from repro.vmmc.notifications import Notifier


class ClusterNode:
    """One host with its network interface."""

    def __init__(self, node_id, cluster, fabric, memory_bytes,
                 cache_entries, associativity, cost_model, timeout_steps=8):
        self.node_id = node_id
        self.cluster = cluster
        self.cost_model = cost_model
        self.os = SimulatedOS(PhysicalMemory(memory_bytes),
                              cost_model=cost_model)
        self.sram = NicSram()
        self.dma = DmaEngine(self.os.physical, self.sram)
        self.cache = SharedUtlbCache(cache_entries,
                                     associativity=associativity)
        self.sram.allocate("utlb-cache", self.cache.sram_bytes())
        self.driver = VmmcDriver(self.os)
        self.exports = ExportRegistry(node_id)
        self.interrupts = InterruptLine(self.os)
        self.notifier = Notifier(interrupt_line=self.interrupts)
        self.lanai = LanaiProcessor()
        self.endpoint = ReliableEndpoint(node_id, fabric, deliver=None,
                                         timeout_steps=timeout_steps)
        self.mcp = Mcp(node_id, self.sram, self.dma, self.endpoint,
                       self.exports, interrupt_line=self.interrupts,
                       notifier=self.notifier, lanai=self.lanai)
        fabric.attach(node_id, self.endpoint.handle_packet)
        self.os.register_interrupt(VECTOR_TABLE_SWAPPED,
                                   self._handle_table_swapped)
        self.os.register_interrupt(VECTOR_MESSAGE_ARRIVED,
                                   self._handle_message_arrived)
        self.arrival_interrupts = 0
        self._libraries = {}

    def _handle_table_swapped(self, pid, dir_index):
        """Host handler: page a second-level translation table back in."""
        self.mcp.utlb_for(pid).table.swap_in_table(dir_index)

    def _handle_message_arrived(self, pid, export_id):
        """Host handler for interrupt-mode arrival notifications (wakes
        a sleeping receiver; the record itself is already queued)."""
        self.arrival_interrupts += 1

    # -- process / library creation ------------------------------------------------

    def create_process(self, memory_limit_pages=None, pin_policy="lru",
                       prepin=1, prefetch=1, seed=0):
        """Create a process with its VMMC library; returns the library."""
        process = self.os.create_process()
        # Each process gets its page directory in NIC SRAM (Section 3.3).
        self.sram.allocate("utlb-dir:%r" % (process.pid,),
                           params.DIRECTORY_ENTRIES * 4)
        utlb = HierarchicalUtlb(
            process.pid, self.cache, driver=self.driver,
            cost_model=self.cost_model,
            memory_limit_pages=memory_limit_pages, pin_policy=pin_policy,
            prepin=prepin, prefetch=prefetch,
            garbage_frame=self.driver.garbage_frame, seed=seed)
        queue = CommandQueue(process.pid, self.sram)
        self.mcp.register_process(process.pid, queue, utlb)
        library = VmmcLibrary(process, utlb, queue, self.exports,
                              self.cluster, self.node_id,
                              notifier=self.notifier)
        self._libraries[process.pid] = library
        return library

    def library(self, pid):
        try:
            return self._libraries[pid]
        except KeyError:
            raise ProtectionError("node %r has no process %r"
                                  % (self.node_id, pid))

    def libraries(self):
        return list(self._libraries.values())

    @property
    def pending_commands(self):
        return sum(lib.queue.pending for lib in self._libraries.values())


class Cluster:
    """A Myrinet cluster: fabric + nodes + the driving loop."""

    def __init__(self, num_nodes=2, memory_bytes=256 * 1024 * 1024,
                 cache_entries=params.DEFAULT_UTLB_CACHE_ENTRIES,
                 associativity=1, latency_steps=1, loss_rate=0.0, seed=0,
                 cost_model=None, timeout_steps=8):
        if num_nodes < 1:
            raise ConfigError("a cluster needs at least one node")
        cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.fabric = Fabric(latency_steps=latency_steps,
                             loss_rate=loss_rate, seed=seed)
        self._nodes = {}
        for node_id in range(num_nodes):
            self._nodes[node_id] = ClusterNode(
                node_id, self, self.fabric, memory_bytes, cache_entries,
                associativity, cost_model, timeout_steps=timeout_steps)

    # -- topology ----------------------------------------------------------------------

    def node(self, node_id):
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigError("no node %r in the cluster" % (node_id,))

    def nodes(self):
        return [self._nodes[k] for k in sorted(self._nodes)]

    def lookup_export(self, node_id, export_id):
        """Cluster-wide export directory (connection-setup control path)."""
        return self.node(node_id).exports.lookup(export_id)

    # -- the driving loop -----------------------------------------------------------------

    def step(self, n=1):
        """One simulation step: MCPs poll, the fabric moves, timers tick."""
        for _ in range(n):
            for node in self._nodes.values():
                node.mcp.poll()
            self.fabric.step()
            for node in self._nodes.values():
                node.endpoint.tick()
        return self.fabric.now

    def quiescent(self):
        """True when no command, packet, or unacked send remains."""
        for node in self._nodes.values():
            if node.pending_commands:
                return False
            if not node.endpoint.all_acked():
                return False
        for node_id in self._nodes:
            if self.fabric.uplink(node_id).in_flight:
                return False
            if self.fabric.downlink(node_id).in_flight:
                return False
        return True

    def run_until_quiet(self, max_steps=100000):
        """Step until quiescent; returns steps taken.  Raises
        :class:`NetworkError` when the budget runs out (livelock)."""
        for steps in range(max_steps):
            if self.quiescent():
                return steps
            self.step()
        if self.quiescent():
            return max_steps
        raise NetworkError(
            "cluster did not quiesce within %d steps" % (max_steps,))
