"""Exported receive buffers and import handles (the VMMC model, Fig. 5).

"The receive buffer is made visible to applications on remote hosts
through an export system call.  An application gains access rights to an
exported receive buffer by importing it."  Exported buffers are pinned for
their lifetime; their translations live in the owner's Hierarchical-UTLB
translation table, so the receive path resolves addresses through exactly
the same NIC machinery as the send path (the Section 3.3 unification).
"""

import itertools

from repro.core import addresses
from repro.errors import ProtectionError

_export_ids = itertools.count(1)


class ExportedBuffer:
    """One exported receive buffer on its owning node."""

    def __init__(self, pid, vaddr, nbytes, node_id):
        if nbytes <= 0:
            raise ProtectionError("cannot export an empty buffer")
        addresses.validate_vaddr(vaddr)
        addresses.validate_vaddr(vaddr + nbytes - 1)
        self.export_id = next(_export_ids)
        self.pid = pid
        self.vaddr = vaddr
        self.nbytes = nbytes
        self.node_id = node_id
        self.redirect_vaddr = None
        self.bytes_received = 0

    def delivery_vaddr(self):
        """Where incoming data lands: the redirect target when set."""
        if self.redirect_vaddr is not None:
            return self.redirect_vaddr
        return self.vaddr

    @property
    def num_pages(self):
        return len(addresses.page_range(self.vaddr, self.nbytes))

    def __repr__(self):
        return ("ExportedBuffer(id=%d, pid=%r, vaddr=%#x, nbytes=%d, "
                "redirect=%r)" % (self.export_id, self.pid, self.vaddr,
                                  self.nbytes, self.redirect_vaddr))


class ImportHandle:
    """A remote process's capability to a buffer exported elsewhere."""

    __slots__ = ("node_id", "export_id", "nbytes")

    def __init__(self, node_id, export_id, nbytes):
        self.node_id = node_id
        self.export_id = export_id
        self.nbytes = nbytes

    def __repr__(self):
        return "ImportHandle(node=%r, export=%d, nbytes=%d)" % (
            self.node_id, self.export_id, self.nbytes)


class ExportRegistry:
    """All buffers exported from one node (lives on that node's NIC)."""

    def __init__(self, node_id):
        self.node_id = node_id
        self._exports = {}

    def register(self, export):
        if export.node_id != self.node_id:
            raise ProtectionError(
                "export for node %r registered on node %r"
                % (export.node_id, self.node_id))
        self._exports[export.export_id] = export
        return export.export_id

    def lookup(self, export_id):
        try:
            return self._exports[export_id]
        except KeyError:
            raise ProtectionError(
                "node %r has no export %r" % (self.node_id, export_id))

    def unregister(self, export_id):
        export = self.lookup(export_id)
        del self._exports[export_id]
        return export

    def exports_for(self, pid):
        return [e for e in self._exports.values() if e.pid == pid]

    def __len__(self):
        return len(self._exports)

    def __contains__(self, export_id):
        return export_id in self._exports

    def sram_bytes(self):
        """Accounting: the descriptor footprint on the NIC (vaddr, length,
        pid tag, redirect pointer — 16 bytes each)."""
        return len(self._exports) * 16
