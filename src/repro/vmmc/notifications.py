"""Receive notifications for VMMC.

VMMC lets receivers learn about message arrival without blocking in the
OS.  Two modes, mirroring the design space the paper discusses:

* **poll** (default) — the NIC appends a record to a user-visible
  notification queue in host memory; the application polls it from user
  level.  No interrupts: this is the mode consistent with UTLB's goal of
  an interrupt-free common path.
* **interrupt** — the NIC also raises a host interrupt per arrival; an
  application that sleeps can be woken, at the cost the paper quantifies
  (10 µs per interrupt).

Notifications are per-export and disabled unless the owner enables them.
"""

import itertools
from collections import deque

from repro.errors import ConfigError

MODE_POLL = "poll"
MODE_INTERRUPT = "interrupt"

MODES = (MODE_POLL, MODE_INTERRUPT)

_notification_ids = itertools.count()


class NotificationRecord:
    """One arrival: which export, where in it, and how many bytes."""

    __slots__ = ("notification_id", "export_id", "offset", "nbytes",
                 "from_node")

    def __init__(self, export_id, offset, nbytes, from_node):
        self.notification_id = next(_notification_ids)
        self.export_id = export_id
        self.offset = offset
        self.nbytes = nbytes
        self.from_node = from_node

    def __repr__(self):
        return ("NotificationRecord(#%d export=%d offset=%d nbytes=%d "
                "from=%r)" % (self.notification_id, self.export_id,
                              self.offset, self.nbytes, self.from_node))


class Notifier:
    """Per-node notification machinery (owned by the ClusterNode)."""

    def __init__(self, interrupt_line=None, queue_depth=256):
        if queue_depth <= 0:
            raise ConfigError("notification queue depth must be positive")
        self.interrupt_line = interrupt_line
        self.queue_depth = queue_depth
        self._queues = {}           # pid -> deque of NotificationRecord
        self._modes = {}            # export_id -> mode
        self.delivered = 0
        self.dropped = 0

    # -- configuration (receiver side, control path) -----------------------------

    def enable(self, export, mode=MODE_POLL):
        """Turn on notifications for an export."""
        if mode not in MODES:
            raise ConfigError("unknown notification mode %r" % (mode,))
        self._modes[export.export_id] = mode
        self._queues.setdefault(export.pid, deque())

    def disable(self, export):
        self._modes.pop(export.export_id, None)

    def mode_of(self, export_id):
        return self._modes.get(export_id)

    # -- NIC side -------------------------------------------------------------------

    def notify(self, export, offset, nbytes, from_node):
        """Called by the MCP after delivering data into an export."""
        mode = self._modes.get(export.export_id)
        if mode is None:
            return False
        queue = self._queues.setdefault(export.pid, deque())
        if len(queue) >= self.queue_depth:
            # A full queue drops the oldest record (the application is
            # not draining); data delivery itself is unaffected.
            queue.popleft()
            self.dropped += 1
        queue.append(NotificationRecord(export.export_id, offset, nbytes,
                                        from_node))
        self.delivered += 1
        if mode == MODE_INTERRUPT and self.interrupt_line is not None:
            from repro.nic.interrupts import VECTOR_MESSAGE_ARRIVED
            self.interrupt_line.raise_interrupt(
                VECTOR_MESSAGE_ARRIVED, pid=export.pid,
                export_id=export.export_id)
        return True

    # -- user side ---------------------------------------------------------------------

    def poll(self, pid, max_records=None):
        """Drain (up to ``max_records``) pending notifications for a
        process — a user-level read of the notification queue."""
        queue = self._queues.get(pid)
        if not queue:
            return []
        count = len(queue) if max_records is None else min(max_records,
                                                           len(queue))
        return [queue.popleft() for _ in range(count)]

    def pending(self, pid):
        queue = self._queues.get(pid)
        return len(queue) if queue else 0
