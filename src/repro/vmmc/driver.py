"""The VMMC device driver.

The kernel-resident half of the system (Figure 6): it owns the garbage
page, registers an ioctl entry point with the (unmodified) OS, and
services pin/unpin requests from the user-level library — "An ioctl() call
is added to the VMMC device driver for pinning virtual pages and storing
physical addresses in the translation table" (Section 4.2).

The driver implements the driver protocol that
:class:`~repro.core.utlb.HierarchicalUtlb` expects (``pin_pages`` /
``unpin_pages``), routing each call through ``SimulatedOS.ioctl`` so
syscall counts stay honest.
"""

from repro.errors import ProtectionError

DEVICE_NAME = "vmmc"

REQ_PIN = "pin"
REQ_UNPIN = "unpin"


class VmmcDriver:
    """Device driver instance for one host."""

    def __init__(self, os):
        self.os = os
        os.register_ioctl(DEVICE_NAME, self._handle_ioctl)
        # "The device driver allocates and pins a 'garbage' page" — all
        # invalid translations resolve here (Section 4.2).
        self._garbage_owner = os.create_process(pid="<vmmc-driver>")
        self.garbage_frame = self._garbage_owner.space.pin(0)
        self.ioctl_count = 0

    # -- ioctl entry point -------------------------------------------------------

    def _handle_ioctl(self, pid, request, **kwargs):
        self.ioctl_count += 1
        space = self.os.process(pid).space
        if request == REQ_PIN:
            return self.os.pin_facility.pin_pages(space, kwargs["vpages"])
        if request == REQ_UNPIN:
            return self.os.pin_facility.unpin_pages(space, kwargs["vpages"])
        raise ProtectionError("unknown VMMC ioctl request %r" % (request,))

    # -- the HierarchicalUtlb driver protocol ---------------------------------------

    def pin_pages(self, pid, vpages):
        """Pin pages on behalf of the user library (one ioctl)."""
        return self.os.ioctl(pid, DEVICE_NAME, REQ_PIN, vpages=list(vpages))

    def unpin_pages(self, pid, vpages):
        """Unpin pages on behalf of the user library (one ioctl)."""
        return self.os.ioctl(pid, DEVICE_NAME, REQ_UNPIN, vpages=list(vpages))
