"""Trace export: JSONL loading and Chrome-trace conversion.

``python -m repro --trace-dir DIR`` dumps one JSONL event file per sweep
cell.  This module reads those files back and converts one cell's stream
into the Chrome trace-event format (``chrome://tracing`` / Perfetto):

* every event becomes an *instant* event on the owning process's track,
  with one thread row per event kind, timestamped by stream position
  (one microsecond per event — the stream is ordered, not clocked);
* every PIN..UNPIN pair additionally becomes an *async* span, so page
  pinning lifetimes render as horizontal bars — which is exactly the
  per-event view (which lookup missed, why a page left) that the
  aggregate tables cannot show.

Standalone use::

    python -m repro.obs.export DIR/cell.jsonl -o cell.chrome.json
"""

import argparse
import json

from repro.obs.events import EVENT_KINDS, PIN, UNPIN
from repro.obs.tracer import dumps_event, loads_event

#: Stable thread id per event kind (Chrome renders one row per tid).
KIND_TIDS = {kind: index for index, kind in enumerate(EVENT_KINDS)}


def write_events_jsonl(events, path):
    """Write an event iterable as canonical JSON Lines."""
    with open(path, "w", encoding="ascii") as handle:
        for event in events:
            handle.write(dumps_event(event))
            handle.write("\n")


def iter_events_jsonl(path):
    """Yield events from a JSONL trace file, in stream order."""
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield loads_event(line)


def load_events_jsonl(path):
    """The whole JSONL trace file as a list of events."""
    return list(iter_events_jsonl(path))


def chrome_trace(events):
    """Convert an event stream to a Chrome trace-event dict.

    Timestamps are stream positions (µs spacing): the simulators order
    events exactly, but do not clock them, so position is the faithful
    x-axis.  Returns the ``{"traceEvents": [...]}`` container format.
    """
    trace_events = []
    open_pins = {}                  # (pid, page) -> span id
    next_span = 0
    for ts, event in enumerate(events):
        args = {}
        if event.frame is not None:
            args["frame"] = event.frame
        if event.n is not None:
            args["n"] = event.n
        trace_events.append({
            "name": event.kind,
            "cat": "translation",
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": event.pid,
            "tid": KIND_TIDS[event.kind],
            "args": dict(args, page="%#x" % event.page),
        })
        if event.kind == PIN:
            span = next_span = next_span + 1
            open_pins[(event.pid, event.page)] = span
            trace_events.append(
                _pin_span(event.pid, event.page, "b", ts, span))
        elif event.kind == UNPIN:
            span = open_pins.pop((event.pid, event.page), None)
            if span is not None:
                trace_events.append(
                    _pin_span(event.pid, event.page, "e", ts, span))
    # Pages still pinned at end of run: close their spans at the final
    # timestamp so viewers do not drop them.
    end = len(events)
    for (pid, page), span in sorted(open_pins.items()):
        trace_events.append(_pin_span(pid, page, "e", end, span))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _pin_span(pid, page, phase, ts, span):
    """One endpoint of a pinned-page async span."""
    return {
        "name": "pinned %#x" % page,
        "cat": "pin",
        "ph": phase,
        "id": span,
        "ts": ts,
        "pid": pid,
        "tid": KIND_TIDS[PIN],
    }


def write_chrome_trace(events, path):
    """Write one cell's events as a Chrome trace JSON file."""
    with open(path, "w", encoding="ascii") as handle:
        json.dump(chrome_trace(list(events)), handle)
        handle.write("\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Convert a JSONL event trace to Chrome trace format.")
    parser.add_argument("jsonl", help="JSONL trace file (--trace-dir output)")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: <jsonl>.chrome.json)")
    args = parser.parse_args(argv)
    output = args.output or args.jsonl + ".chrome.json"
    events = load_events_jsonl(args.jsonl)
    write_chrome_trace(events, output)
    print("%s: %d events -> %s" % (args.jsonl, len(events), output))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
