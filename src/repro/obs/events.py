"""Compact typed event records for the translation machinery.

One :class:`Event` per observable state transition, in exact occurrence
order.  The stream is the ground truth the aggregate counters summarize:
every :class:`~repro.core.stats.TranslationStats` field is a tally (or a
sum of payloads) over these records, and the counter-event equality tests
enforce exactly that.

Event kinds and payload conventions
-----------------------------------

================  ==========================================================
``LOOKUP``        One translation lookup entered the user-level check
                  (the paper's per-lookup unit, footnote 1).
``CHECK_MISS``    The user-level bit vector missed; demand pinning follows.
``PIN``           One page was pinned.  ``frame`` is the physical frame;
                  ``n`` is the batch size on the *first* page of a pin
                  call (``pin_pages`` ioctl) and None on the rest, so
                  ``pin_calls`` is the tally of events with ``n``.
``UNPIN``         One page was unpinned (always one ioctl per page,
                  Section 6.5).
``NI_FILL``       A translation entered the NIC cache.  ``frame`` is the
                  frame; ``n`` is 1 for the demand fill, 0 for a prefetch.
``NI_HIT``        The NIC cache answered a lookup.
``NI_EVICT``      A fill displaced this entry from the NIC cache.
``NI_INVALIDATE`` The host explicitly dropped this entry (page unpinned or
                  process exited).
``ENTRY_FETCH``   A NIC miss DMAed a block of ``n`` translation entries
                  from host memory (UTLB mechanism; ``page`` is the demand
                  page).  One per NIC miss.
``INTERRUPT``     A NIC miss interrupted the host CPU (interrupt-based
                  baseline).  One per NIC miss.
================  ==========================================================

Ordering guarantees the emitters uphold (the invariant checker and the
well-formedness property tests rely on them):

* ``PIN`` precedes any ``NI_FILL`` of that page, and ``NI_INVALIDATE``
  precedes the ``UNPIN`` of a cached page — the NIC never maps an
  unpinned page.
* Under the interrupt baseline, every ``UNPIN`` immediately follows the
  ``NI_EVICT``/``NI_INVALIDATE`` that removed the page's translation
  (pinned pages and cached translations are the same set, Section 6.2).
"""

from collections import namedtuple

LOOKUP = "lookup"
CHECK_MISS = "check_miss"
PIN = "pin"
UNPIN = "unpin"
NI_FILL = "ni_fill"
NI_HIT = "ni_hit"
NI_EVICT = "ni_evict"
NI_INVALIDATE = "ni_invalidate"
ENTRY_FETCH = "entry_fetch"
INTERRUPT = "interrupt"

#: Every kind, in rough lifecycle order.
EVENT_KINDS = (LOOKUP, CHECK_MISS, PIN, UNPIN, NI_FILL, NI_HIT, NI_EVICT,
               NI_INVALIDATE, ENTRY_FETCH, INTERRUPT)

_EVENT_KIND_SET = frozenset(EVENT_KINDS)


class Event(namedtuple("Event", ("kind", "pid", "page", "frame", "n"))):
    """One observable state transition: ``(kind, pid, page, frame, n)``.

    ``frame`` and ``n`` are kind-specific payloads (see the module
    docstring) and default to None.  Being a tuple keeps construction
    cheap — the reference replay engine creates one per event — and makes
    streams directly comparable and hashable.
    """

    __slots__ = ()

    def __new__(cls, kind, pid, page, frame=None, n=None):
        return super().__new__(cls, kind, pid, page, frame, n)

    def to_dict(self):
        """JSON-safe dict; None payloads are omitted (compact JSONL)."""
        out = {"kind": self.kind, "pid": self.pid, "page": self.page}
        if self.frame is not None:
            out["frame"] = self.frame
        if self.n is not None:
            out["n"] = self.n
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild an event from :meth:`to_dict` output.

        Raises ``ValueError`` on an unknown kind, so corrupted trace
        files fail loudly at load time rather than during analysis.
        """
        kind = data["kind"]
        if kind not in _EVENT_KIND_SET:
            raise ValueError("unknown event kind %r" % (kind,))
        return cls(kind, data["pid"], data["page"],
                   data.get("frame"), data.get("n"))

    def __repr__(self):
        parts = ["%s pid=%r page=%#x" % (self.kind, self.pid, self.page)]
        if self.frame is not None:
            parts.append("frame=%r" % (self.frame,))
        if self.n is not None:
            parts.append("n=%r" % (self.n,))
        return "Event(%s)" % " ".join(parts)
