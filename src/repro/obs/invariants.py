"""Streaming invariant checking over the translation event stream.

:class:`InvariantChecker` is a :class:`~repro.obs.tracer.Tracer` that
replays the design's correctness argument *per event*, as the simulation
runs — instead of only diffing end-of-run aggregates:

* a process never holds more pinned pages than its memory limit;
* every live NIC-cache entry maps a *currently pinned* page of the right
  process, at fill time and at every subsequent hit;
* every ``UNPIN`` matches a prior ``PIN`` of a page with no live NIC
  entry (the host invalidates before unpinning);
* under the interrupt-based baseline, a page is unpinned exactly when
  its translation leaves the cache — no sooner, no later (pinned pages
  and cached translations are the same set, Section 6.2);
* at end of run, the aggregate :class:`~repro.core.stats.TranslationStats`
  counters equal the tallies of the events that produced them
  (:meth:`verify_stats` / :meth:`verify_node`).

A violation raises :class:`InvariantViolation` (an ``AssertionError``
subclass, so ``pytest`` reports it as a plain assertion failure) at the
exact event where the state went wrong, with the offending event in the
message.
"""

from repro.obs import events as ev
from repro.obs.tracer import Tracer

#: Mechanisms whose event streams the checker understands.  The three
#: cache-model mechanisms (Victima/Utopia/SPARTA designs) reuse the UTLB
#: host stack, so their streams obey exactly the ``utlb`` rules; only
#: ``intr`` adds the unpin-exactly-on-evict coupling.
MECHANISMS = ("utlb", "intr", "victima", "utopia", "sparta-range")


class InvariantViolation(AssertionError):
    """An event contradicted the translation design's invariants."""


class InvariantChecker(Tracer):
    """Checks every event against shadow pin/cache state as it streams.

    Parameters
    ----------
    memory_limit_pages:
        Per-process pinning limit the run was configured with (None =
        unlimited, the Table 4 setting).
    mechanism:
        ``"utlb"`` (Hierarchical-UTLB) or ``"intr"`` (interrupt-based
        baseline).  The baseline adds the unpin-exactly-on-evict rule.
    """

    def __init__(self, memory_limit_pages=None, mechanism="utlb"):
        if mechanism not in MECHANISMS:
            raise InvariantViolation(
                "unknown mechanism %r (use one of %s)"
                % (mechanism, MECHANISMS))
        self.memory_limit_pages = memory_limit_pages
        self.mechanism = mechanism
        self.events_seen = 0
        self._pinned = {}           # pid -> {page: frame}
        self._nic = {}              # pid -> {page: frame}
        self._pending_unpin = set() # (pid, page) evicted, awaiting UNPIN
        self._tally = {}            # (pid, kind) -> count
        self._pin_calls = {}        # pid -> number of PIN batch heads
        self._entries_fetched = {}  # pid -> sum of ENTRY_FETCH payloads

    # -- streaming ----------------------------------------------------------

    def emit(self, event):
        self.events_seen += 1
        key = (event.pid, event.kind)
        self._tally[key] = self._tally.get(key, 0) + 1
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    def _fail(self, event, why):
        raise InvariantViolation(
            "event %d violates the %s invariants: %s (%r)"
            % (self.events_seen, self.mechanism, why, event))

    def _on_pin(self, event):
        pinned = self._pinned.setdefault(event.pid, {})
        if event.page in pinned:
            self._fail(event, "page pinned twice without an UNPIN between")
        pinned[event.page] = event.frame
        limit = self.memory_limit_pages
        if limit is not None and len(pinned) > limit:
            self._fail(event, "pinned pages exceed the memory limit "
                              "(%d > %d)" % (len(pinned), limit))
        if event.n is not None:
            self._pin_calls[event.pid] = \
                self._pin_calls.get(event.pid, 0) + 1

    def _on_unpin(self, event):
        pinned = self._pinned.get(event.pid, {})
        if event.page not in pinned:
            self._fail(event, "UNPIN without a matching prior PIN")
        if event.page in self._nic.get(event.pid, {}):
            self._fail(event, "page unpinned while its translation is "
                              "still live in the NIC cache")
        if self.mechanism == "intr":
            key = (event.pid, event.page)
            if key not in self._pending_unpin:
                self._fail(event, "baseline unpinned a page whose "
                                  "translation was not just evicted")
            self._pending_unpin.discard(key)
        del pinned[event.page]

    def _on_check_miss(self, event):
        if event.page in self._pinned.get(event.pid, {}):
            self._fail(event, "check miss on a page that is pinned")

    def _on_ni_fill(self, event):
        pinned = self._pinned.get(event.pid, {})
        if event.page not in pinned:
            self._fail(event, "NIC cache filled with an unpinned page")
        if event.frame != pinned[event.page]:
            self._fail(event, "NIC fill frame %r disagrees with the "
                              "pinned frame %r"
                       % (event.frame, pinned[event.page]))
        self._nic.setdefault(event.pid, {})[event.page] = event.frame

    def _on_ni_hit(self, event):
        if event.page not in self._nic.get(event.pid, {}):
            self._fail(event, "NIC hit on an entry that is not live "
                              "(no fill since the last evict/invalidate)")
        if event.page not in self._pinned.get(event.pid, {}):
            self._fail(event, "NIC hit maps an unpinned page")

    def _on_ni_drop(self, event):
        nic = self._nic.get(event.pid, {})
        if event.page not in nic:
            self._fail(event, "entry left the NIC cache but was not live")
        del nic[event.page]
        if self.mechanism == "intr":
            self._pending_unpin.add((event.pid, event.page))

    def _on_entry_fetch(self, event):
        if not event.n or event.n < 1:
            self._fail(event, "entry fetch of a non-positive block")
        if event.page not in self._pinned.get(event.pid, {}):
            self._fail(event, "translation fetched for an unpinned page")
        self._entries_fetched[event.pid] = \
            self._entries_fetched.get(event.pid, 0) + event.n

    def _on_interrupt(self, event):
        if event.page in self._nic.get(event.pid, {}):
            self._fail(event, "interrupt for a page whose translation "
                              "is cached")

    _HANDLERS = {
        ev.PIN: _on_pin,
        ev.UNPIN: _on_unpin,
        ev.CHECK_MISS: _on_check_miss,
        ev.NI_FILL: _on_ni_fill,
        ev.NI_HIT: _on_ni_hit,
        ev.NI_EVICT: _on_ni_drop,
        ev.NI_INVALIDATE: _on_ni_drop,
        ev.ENTRY_FETCH: _on_entry_fetch,
        ev.INTERRUPT: _on_interrupt,
    }

    # -- end-of-run verification --------------------------------------------

    def close(self):
        """End of stream: no eviction may be left without its unpin."""
        if self._pending_unpin:
            raise InvariantViolation(
                "baseline run ended with evicted-but-still-pinned pages: "
                "%s" % sorted(self._pending_unpin)[:8])

    def tally(self, pid, kind):
        return self._tally.get((pid, kind), 0)

    def verify_stats(self, per_pid_stats):
        """Assert each process's counters equal its event tallies.

        ``per_pid_stats`` maps pid -> :class:`TranslationStats` (exactly
        ``NodeResult.per_pid``).  Counters must equal the events that
        produced them — the oracle every perf PR is held to.
        """
        seen_pids = {pid for pid, _ in self._tally}
        extra = seen_pids - set(per_pid_stats)
        if extra:
            raise InvariantViolation(
                "events from pids with no stats: %s" % sorted(extra)[:8])
        for pid, stats in per_pid_stats.items():
            t = lambda kind: self.tally(pid, kind)
            misses = t(ev.ENTRY_FETCH) + t(ev.INTERRUPT)
            expected = {
                "lookups": t(ev.LOOKUP),
                "check_misses": t(ev.CHECK_MISS),
                "ni_accesses": t(ev.NI_HIT) + misses,
                "ni_hits": t(ev.NI_HIT),
                "ni_misses": misses,
                "ni_evictions": 0,      # tracked at cache level, not per pid
                "pin_calls": self._pin_calls.get(pid, 0),
                "pages_pinned": t(ev.PIN),
                "unpin_calls": t(ev.UNPIN),
                "pages_unpinned": t(ev.UNPIN),
                "interrupts": t(ev.INTERRUPT),
                "entries_fetched": self._entries_fetched.get(pid, 0),
            }
            for field, want in expected.items():
                got = getattr(stats, field)
                if got != want:
                    raise InvariantViolation(
                        "pid %r: stats.%s is %r but the event stream "
                        "tallies %r" % (pid, field, got, want))

    def verify_cache(self, cache_snapshot):
        """Assert the NIC cache's counters equal the event tallies.

        ``cache_snapshot`` is ``NodeResult.cache`` (a
        :meth:`CacheStats.snapshot` dict).
        """
        totals = {}
        for (_pid, kind), count in self._tally.items():
            totals[kind] = totals.get(kind, 0) + count
        t = totals.get
        misses = t(ev.ENTRY_FETCH, 0) + t(ev.INTERRUPT, 0)
        expected = {
            "accesses": t(ev.NI_HIT, 0) + misses,
            "hits": t(ev.NI_HIT, 0),
            "misses": misses,
            "fills": t(ev.NI_FILL, 0),
            "evictions": t(ev.NI_EVICT, 0),
            "invalidations": t(ev.NI_INVALIDATE, 0),
        }
        for field, want in expected.items():
            got = cache_snapshot.get(field)
            if got != want:
                raise InvariantViolation(
                    "cache stats %r is %r but the event stream tallies "
                    "%r" % (field, got, want))

    def verify_node(self, node_result):
        """Full end-of-run check of one :class:`NodeResult`."""
        self.verify_stats(node_result.per_pid)
        if isinstance(node_result.cache, dict) \
                and "accesses" in node_result.cache:
            self.verify_cache(node_result.cache)
