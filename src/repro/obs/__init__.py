"""Observability: structured event tracing for the translation machinery.

The paper's evaluation (Section 6, Tables 4-5) reports per-lookup
*averages*; :class:`~repro.core.stats.TranslationStats` mirrors that with
aggregate counters.  This package records the *events behind the
counters*: every lookup, check miss, pin/unpin, NIC-cache fill/hit/evict/
invalidate, entry fetch, and interrupt, as compact typed records
(:mod:`repro.obs.events`) delivered to a pluggable
:class:`~repro.obs.tracer.Tracer`.

Tracing is zero-cost when off: the default :class:`NullTracer` leaves the
fast replay engine's counter-only hot loop untouched (byte- and
speed-identical output).  Attaching any enabled tracer routes replay
through the reference engine, which emits the full stream.

Uses:

* :class:`CollectingTracer` — in-memory event list; the counter-event
  equality tests derive every ``TranslationStats`` field from it.
* :class:`JsonlTracer` — streaming JSONL dumps
  (``python -m repro --trace-dir``).
* :class:`~repro.obs.invariants.InvariantChecker` — a streaming tracer
  that enforces the design's cross-structure invariants per event.
* :mod:`repro.obs.export` — JSONL loading and Chrome-trace conversion.
"""

from repro.obs.events import (
    CHECK_MISS,
    ENTRY_FETCH,
    EVENT_KINDS,
    INTERRUPT,
    LOOKUP,
    NI_EVICT,
    NI_FILL,
    NI_HIT,
    NI_INVALIDATE,
    PIN,
    UNPIN,
    Event,
)
from repro.obs.invariants import InvariantChecker, InvariantViolation
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    TeeTracer,
    Tracer,
)

__all__ = [
    "CHECK_MISS",
    "ENTRY_FETCH",
    "EVENT_KINDS",
    "INTERRUPT",
    "LOOKUP",
    "NI_EVICT",
    "NI_FILL",
    "NI_HIT",
    "NI_INVALIDATE",
    "PIN",
    "UNPIN",
    "Event",
    "InvariantChecker",
    "InvariantViolation",
    "NULL_TRACER",
    "CollectingTracer",
    "JsonlTracer",
    "NullTracer",
    "TeeTracer",
    "Tracer",
]
