"""Tracers: pluggable sinks for the translation event stream.

A tracer is anything with an ``emit(event)`` method, an ``enabled`` flag,
and a ``close()``.  The machinery emits through a ``trace`` callable it
binds once at construction (``tracer.emit`` when enabled, None when not),
so a disabled tracer costs a single identity check per *instrumented
branch* in the reference engine and nothing at all in the fast engine's
counter-only hot loop.

``enabled`` is a class-level contract, not a runtime toggle: the
simulators read it once, when a node is built, to decide whether the run
must take the event-emitting reference path.  Flipping it mid-run on a
live tracer has no effect on already-built nodes.
"""

import json

from repro.obs.events import Event


class Tracer:
    """Base tracer: receives every event of a simulated run, in order.

    Subclasses override :meth:`emit`.  ``enabled`` is True for every
    tracer that actually wants the stream; the simulators route enabled
    tracers through the reference replay engine (the fast engine's hot
    loop skips per-event work entirely, so it cannot feed one).
    """

    enabled = True

    def emit(self, event):
        """Receive one :class:`~repro.obs.events.Event`."""
        raise NotImplementedError

    def close(self):
        """Flush and release any resources; called once, by the owner."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class NullTracer(Tracer):
    """The default: trace nothing, cost nothing.

    With a NullTracer (or ``tracer=None``) the fast replay engine's
    counter-only hot loop runs unchanged — byte- and speed-identical to
    an untraced build; the CI throughput smoke job asserts the parity.
    """

    enabled = False

    def emit(self, event):
        pass


#: Shared do-nothing instance (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


class CollectingTracer(Tracer):
    """Accumulates every event in an in-memory list (``.events``).

    The workhorse of the trace-backed test oracles: replay once, then
    derive counts from the stream and compare against the aggregate
    counters.
    """

    def __init__(self):
        self.events = []
        self.emit = self.events.append      # bound once; no indirection

    def tally(self, kind, pid=None):
        """Number of events of ``kind`` (optionally for one pid)."""
        if pid is None:
            return sum(1 for e in self.events if e.kind == kind)
        return sum(1 for e in self.events
                   if e.kind == kind and e.pid == pid)

    def events_for(self, pid):
        """The sub-stream of one process, in order."""
        return [e for e in self.events if e.pid == pid]

    def clear(self):
        del self.events[:]


class JsonlTracer(Tracer):
    """Streams events to a file as JSON Lines, one object per line.

    Lines are canonical (sorted keys, no spaces), so identical runs
    produce identical bytes — the golden-trace regression test depends
    on it.  Accepts a path (owned: closed by :meth:`close`) or an open
    text handle (borrowed: flushed but left open).
    """

    def __init__(self, path_or_handle):
        if hasattr(path_or_handle, "write"):
            self._handle = path_or_handle
            self._owned = False
            self.path = getattr(path_or_handle, "name", None)
        else:
            self._handle = open(path_or_handle, "w", encoding="ascii")
            self._owned = True
            self.path = path_or_handle
        self.events_written = 0

    def emit(self, event):
        self._handle.write(dumps_event(event))
        self._handle.write("\n")
        self.events_written += 1

    def close(self):
        if self._handle is None:
            return
        if self._owned:
            self._handle.close()
        else:
            self._handle.flush()
        self._handle = None


class TeeTracer(Tracer):
    """Fans each event out to several tracers (e.g. JSONL + invariants).

    Owns none of them: :meth:`close` closes only tracers the caller asks
    it to by constructing with ``own=True``.
    """

    def __init__(self, *tracers, **kwargs):
        self.tracers = [t for t in tracers if t is not None and t.enabled]
        self._own = bool(kwargs.pop("own", False))
        if kwargs:
            raise TypeError("unexpected arguments %r" % sorted(kwargs))

    def emit(self, event):
        for tracer in self.tracers:
            tracer.emit(event)

    def close(self):
        if self._own:
            for tracer in self.tracers:
                tracer.close()


def dumps_event(event):
    """One event as a canonical JSON line (no trailing newline)."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def loads_event(line):
    """Parse one JSONL line back into an :class:`Event`."""
    return Event.from_dict(json.loads(line))


def as_tracer(tracer):
    """Normalize ``None`` to the shared :data:`NULL_TRACER`."""
    return NULL_TRACER if tracer is None else tracer
